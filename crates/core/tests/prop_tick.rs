//! Equivalence of the tick-compiled integer engine with the exact
//! Rational engine.
//!
//! Tick compilation rescales an instance onto its denominator-LCM
//! grid and replays it in pure `u64`/`u128` arithmetic; nothing about
//! the *packing* may change. These properties replay random
//! instances — dense with equal-time departure/arrival boundaries,
//! exact fills, and mid-run bin closures — through the `TickEngine`
//! and through both the linear-scan references and the tree-backed
//! `*Fast` algorithms, and require **bit-identical** outcomes:
//! assignments, per-bin usage intervals, exact level integrals and
//! peaks, the `Σ_k |U_k|` objective, and peak concurrency. A separate
//! property drives instances that cannot compile (oversized LCMs,
//! out-of-range horizons) through `run_packing_auto` and asserts the
//! Rational fallback is transparent.

use dbp_core::prelude::*;
use dbp_core::tick::{CompiledInstance, TickEngine, TickPolicy};
use dbp_core::{PackingAlgorithm, PackingError, PackingOutcome};
use dbp_numeric::rat;
use dbp_simcore::EventClass;
use proptest::prelude::*;

/// Strategy: a well-formed instance with up to 40 items on a mixed
/// grid (halves..eighths for sizes, quarters for times), forcing many
/// simultaneous events and nontrivial LCMs.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 1i128..=8, 0i128..=60, 1i128..=20).prop_map(|(num, den, arr4, dur4)| {
        let size = rat(num.min(den), den); // in (0, 1]
        let arrival = rat(arr4, 4);
        let duration = rat(dur4, 4);
        (size, arrival, arrival + duration)
    });
    prop::collection::vec(item, 0..40)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Strategy: equal-timestamp bursts — every item arrives at one of
/// only three instants and departs at one of three others, so the
/// half-open tie-breaking (departures first, then arrivals in item
/// order) decides nearly every placement.
fn burst_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=6, 0i128..=2, 0i128..=2).prop_map(|(num, slot, hold)| {
        let size = rat(num, 6);
        let arrival = rat(slot * 2, 1);
        let departure = arrival + rat(2 * (hold + 1), 1);
        (size, arrival, departure)
    });
    prop::collection::vec(item, 1..30)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Strategy: instances guaranteed to overflow tick compilation — a
/// salted mix of normal items plus one item whose timestamp
/// denominators are coprime five-digit primes (LCM far past the
/// `u32::MAX` scale cap).
fn overflow_strategy() -> impl Strategy<Value = Instance> {
    instance_strategy().prop_map(|inst| {
        let mut specs: Vec<_> = inst
            .items()
            .iter()
            .map(|it| (it.size, it.arrival(), it.departure()))
            .collect();
        specs.push((rat(1, 2), rat(1, 99991), rat(1, 99991) + rat(1, 99989)));
        Instance::new(specs).expect("overflow salt keeps specs valid")
    })
}

/// Strategy: forced-overflow bursts — every size exceeds half a bin,
/// so each arrival in a shared-instant burst must open a fresh bin.
/// With a small crossover override the linear→tree scan promotion
/// then fires *inside* an arrival burst.
fn overflow_burst_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=9, 0i128..=1, 1i128..=2).prop_map(|(n, wave, hold)| {
        let size = rat(9 + n, 18); // in (1/2, 1]
        let arrival = rat(wave * 4, 1);
        (size, arrival, arrival + rat(4 * hold, 1))
    });
    prop::collection::vec(item, 1..32)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Replays `compiled` through the *public per-event* API — one
/// `arrive`/`depart` call per schedule entry, in schedule order —
/// bypassing the burst batching that [`CompiledInstance::run`] does
/// internally, then finishes.
fn replay_per_event(
    compiled: &CompiledInstance,
    policy: TickPolicy,
    crossover: Option<usize>,
) -> Result<PackingOutcome, PackingError> {
    let mut eng = TickEngine::new(compiled, policy);
    if let Some(c) = crossover {
        eng.set_scan_crossover(c);
    }
    let items = compiled.items();
    for ev in compiled.schedule() {
        match ev.class {
            EventClass::Arrival => {
                eng.arrive(ev.item, items[ev.item.index()].size, ev.tick)?;
            }
            EventClass::Departure => {
                eng.depart(ev.item, ev.tick)?;
            }
            EventClass::Control => {}
        }
    }
    eng.finish(policy.name())
}

/// Compiles and runs `policy`, then checks full outcome equality
/// (name included) against the linear reference and field equality
/// against the `*Fast` tree algorithm.
fn assert_tick_equivalent(
    inst: &Instance,
    policy: TickPolicy,
    linear: &mut dyn PackingAlgorithm,
    fast: &mut dyn PackingAlgorithm,
) -> Result<(), TestCaseError> {
    let compiled = CompiledInstance::compile(inst).expect("strategy instances compile");
    let tick: PackingOutcome = compiled.run(policy).expect("tick run succeeds");
    let exact: PackingOutcome = Runner::new(inst)
        .run(linear)
        .expect("reference run succeeds");
    prop_assert_eq!(
        &tick,
        &exact,
        "tick {} diverged from reference",
        policy.name()
    );
    let tree: PackingOutcome = Runner::new(inst).run(fast).expect("fast run succeeds");
    prop_assert_eq!(tick.assignments(), tree.assignments());
    prop_assert_eq!(tick.bins(), tree.bins());
    prop_assert_eq!(tick.total_usage(), tree.total_usage());
    prop_assert_eq!(tick.max_open_bins(), tree.max_open_bins());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn tick_first_fit_is_bit_identical(inst in instance_strategy()) {
        assert_tick_equivalent(
            &inst,
            TickPolicy::FirstFit,
            &mut FirstFit::new(),
            &mut FirstFitFast::new(),
        )?;
    }

    #[test]
    fn tick_best_fit_is_bit_identical(inst in instance_strategy()) {
        assert_tick_equivalent(
            &inst,
            TickPolicy::BestFit,
            &mut BestFit::new(),
            &mut BestFitFast::new(),
        )?;
    }

    #[test]
    fn tick_worst_fit_is_bit_identical(inst in instance_strategy()) {
        assert_tick_equivalent(
            &inst,
            TickPolicy::WorstFit,
            &mut WorstFit::new(),
            &mut WorstFitFast::new(),
        )?;
    }

    /// Equal-timestamp bursts: the integer engine must reproduce the
    /// heap's departure-before-arrival, item-order tie-breaking.
    #[test]
    fn tick_handles_equal_time_bursts(inst in burst_strategy()) {
        assert_tick_equivalent(
            &inst,
            TickPolicy::FirstFit,
            &mut FirstFit::new(),
            &mut FirstFitFast::new(),
        )?;
        assert_tick_equivalent(
            &inst,
            TickPolicy::BestFit,
            &mut BestFit::new(),
            &mut BestFitFast::new(),
        )?;
    }

    /// Instances that refuse to compile run through the Rational
    /// fallback — transparently, algorithm name included.
    #[test]
    fn auto_fallback_is_transparent(inst in overflow_strategy()) {
        prop_assert!(CompiledInstance::compile(&inst).is_err());
        for (policy, mut linear) in [
            (TickPolicy::FirstFit, Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>),
            (TickPolicy::BestFit, Box::new(BestFit::new())),
            (TickPolicy::WorstFit, Box::new(WorstFit::new())),
        ] {
            #[allow(deprecated)] // compat-shim coverage: the legacy auto entry point
            let auto = run_packing_auto(&inst, policy).expect("fallback run succeeds");
            let exact = Runner::new(&inst).run(linear.as_mut()).expect("reference run succeeds");
            prop_assert_eq!(auto, exact, "fallback {} diverged", policy.name());
        }
    }

    /// The batched replay (one clock check and one bookkeeping flush
    /// per equal-tick burst) must be bit-identical to naive per-event
    /// application through the public API — including across
    /// departure-before-arrival ties at shared instants.
    #[test]
    fn batched_bursts_match_per_event_replay(inst in burst_strategy()) {
        let compiled = CompiledInstance::compile(&inst).expect("burst instances compile");
        for policy in [TickPolicy::FirstFit, TickPolicy::BestFit, TickPolicy::WorstFit] {
            let batched = compiled.run(policy).expect("batched run succeeds");
            let stepped =
                replay_per_event(&compiled, policy, None).expect("per-event run succeeds");
            prop_assert_eq!(
                batched,
                stepped,
                "{} batched/per-event drift",
                policy.name()
            );
        }
    }

    /// Mixed-grid instances through the same batched-vs-per-event
    /// lens: ragged tick spacing, partial fills, mid-run closures.
    #[test]
    fn batched_bursts_match_per_event_on_mixed_grids(inst in instance_strategy()) {
        let compiled = CompiledInstance::compile(&inst).expect("strategy instances compile");
        for policy in [TickPolicy::FirstFit, TickPolicy::BestFit, TickPolicy::WorstFit] {
            let batched = compiled.run(policy).expect("batched run succeeds");
            let stepped =
                replay_per_event(&compiled, policy, None).expect("per-event run succeeds");
            prop_assert_eq!(
                batched,
                stepped,
                "{} batched/per-event drift",
                policy.name()
            );
        }
    }

    /// Forced-overflow bursts with a tiny crossover: the linear→tree
    /// promotion fires in the middle of an arrival burst and must be
    /// invisible — batched, per-event, and exact Rational replays all
    /// agree bit-for-bit.
    #[test]
    fn crossover_promotion_mid_burst_is_invisible(
        inst in overflow_burst_strategy(),
        crossover in 0usize..=8,
    ) {
        let compiled = CompiledInstance::compile(&inst).expect("burst instances compile");
        for (policy, mut reference) in [
            (TickPolicy::FirstFit, Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>),
            (TickPolicy::BestFit, Box::new(BestFit::new())),
            (TickPolicy::WorstFit, Box::new(WorstFit::new())),
        ] {
            let batched = compiled
                .run_with_crossover(policy, crossover)
                .expect("batched run succeeds");
            let stepped = replay_per_event(&compiled, policy, Some(crossover))
                .expect("per-event run succeeds");
            prop_assert_eq!(
                &batched,
                &stepped,
                "{} batched/per-event drift at crossover {}",
                policy.name(),
                crossover
            );
            let exact = Runner::new(&inst)
                .backend(Backend::Exact)
                .run(reference.as_mut())
                .expect("reference run succeeds");
            prop_assert_eq!(
                &batched,
                &exact,
                "{} diverged from exact at crossover {}",
                policy.name(),
                crossover
            );
        }
    }

    /// Faulty event streams fail identically whatever the scan mode:
    /// a duplicate arrival, an unknown departure, or a clock
    /// regression injected after a valid prefix must surface the same
    /// error from a forced-linear and a forced-tree engine.
    #[test]
    fn engine_errors_are_scan_mode_invariant(
        inst in burst_strategy(),
        cut in 0usize..=60,
        fault in 0u8..3,
    ) {
        let compiled = CompiledInstance::compile(&inst).expect("burst instances compile");
        let items = compiled.items();
        let schedule = compiled.schedule();
        let cut = cut.min(schedule.len());
        let mut linear = TickEngine::new(&compiled, TickPolicy::FirstFit);
        linear.set_scan_crossover(usize::MAX);
        let mut tree = TickEngine::new(&compiled, TickPolicy::FirstFit);
        tree.set_scan_crossover(0);
        let mut active: Vec<ItemId> = Vec::new();
        let mut last_tick = 0u64;
        for ev in &schedule[..cut] {
            match ev.class {
                EventClass::Arrival => {
                    let size = items[ev.item.index()].size;
                    linear.arrive(ev.item, size, ev.tick).expect("valid prefix");
                    tree.arrive(ev.item, size, ev.tick).expect("valid prefix");
                    active.push(ev.item);
                }
                EventClass::Departure => {
                    linear.depart(ev.item, ev.tick).expect("valid prefix");
                    tree.depart(ev.item, ev.tick).expect("valid prefix");
                    active.retain(|&i| i != ev.item);
                }
                EventClass::Control => {}
            }
            last_tick = ev.tick;
        }
        let fresh = ItemId(compiled.len() as u32 + 7);
        // Degrade to the always-available fault when the prefix lacks
        // the precondition (an active item / a nonzero clock).
        let (lin_err, tree_err) = match fault {
            0 if !active.is_empty() => {
                let dup = active[0];
                (
                    linear.arrive(dup, 1, last_tick).unwrap_err(),
                    tree.arrive(dup, 1, last_tick).unwrap_err(),
                )
            }
            2 if last_tick > 0 => (
                linear.arrive(fresh, 1, last_tick - 1).unwrap_err(),
                tree.arrive(fresh, 1, last_tick - 1).unwrap_err(),
            ),
            _ => (
                linear.depart(fresh, last_tick).unwrap_err(),
                tree.depart(fresh, last_tick).unwrap_err(),
            ),
        };
        prop_assert_eq!(&lin_err, &tree_err, "scan modes disagreed on the error");
        let expected_kind = matches!(
            lin_err,
            PackingError::DuplicateItem(_)
                | PackingError::UnknownItem(_)
                | PackingError::TimeRegression { .. }
        );
        prop_assert!(expected_kind, "unexpected error kind: {:?}", lin_err);
    }

    /// `run_packing_auto` on compilable instances takes the tick path
    /// and still equals the reference exactly.
    #[test]
    fn auto_takes_the_tick_path_when_possible(inst in instance_strategy()) {
        prop_assert!(CompiledInstance::compile(&inst).is_ok());
        #[allow(deprecated)] // compat-shim coverage: the legacy auto entry point
        let auto = run_packing_auto(&inst, TickPolicy::FirstFit).unwrap();
        let exact = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        prop_assert_eq!(auto, exact);
    }
}

/// Deterministic anchor at scale: the staircase instance keeps
/// hundreds of bins concurrently open; the compiled replay must agree
/// with the exact engine on every book.
#[test]
fn staircase_tick_equivalence_at_scale() {
    let n: i128 = 1500;
    let window: i128 = 300;
    let mut b = Instance::builder();
    for i in 0..n {
        let size = if i % 5 == 0 {
            rat(11 + (i * 13) % 23, 100)
        } else {
            rat(51 + (i * 7) % 49, 100)
        };
        b = b.item(size, rat(i, 1), rat(i + window, 1));
    }
    let inst = b.build().unwrap();
    let compiled = CompiledInstance::compile(&inst).unwrap();
    assert_eq!(compiled.time_scale(), 1);
    assert_eq!(compiled.size_scale(), 100);
    let tick = compiled.run(TickPolicy::FirstFit).unwrap();
    let exact = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
    assert_eq!(tick, exact);
    assert!(tick.max_open_bins() >= window as usize / 2);
}
