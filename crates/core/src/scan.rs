//! Chunked residual-gap scans for the tick engine's linear mode.
//!
//! Below its scan crossover the [`crate::tick::TickEngine`] answers
//! placement queries by sweeping a dense `Vec<u64>` of residual gaps
//! (one entry per open bin, in opening order — see the engine's SoA
//! layout). These sweeps are written to autovectorize on stable Rust
//! with no intrinsics: the slice is walked in fixed-width
//! [`LANES`]-wide chunks whose inner loops are branchless reductions
//! (an any-feasible OR for First Fit, a masked min for Best Fit, a
//! max for Worst Fit), so LLVM turns each chunk into a handful of
//! SIMD compares even at baseline target features. Only after a chunk
//! reduction signals a candidate does a short in-chunk scan recover
//! the exact position, which keeps the tie-break rules — earliest
//! opened bin wins — bit-identical to the `*_scalar` references.
//!
//! The `*_scalar` twins are the pre-vectorization per-slot sweeps,
//! kept as the semantic reference: the `prop_fast_fit` suite asserts
//! position-for-position agreement, and the `fit_scaling` perf
//! snapshot measures both so `perf_check` can gate
//! `chunked_vs_scalar_scan_ratio ≥ 1` (the vectorized sweep must
//! never lose to the sweep it replaced).
//!
//! All selectors return the *position* of the chosen bin within the
//! gap slice (not a bin id): the caller owns the parallel id/slot
//! arrays and uses the position for an `O(1)` gap update on
//! placement. Feasibility masking uses `u64::MAX` as the infeasible
//! sentinel, which no live gap can alias — gaps are bounded by the
//! bin capacity, itself at most `u32::MAX`.

/// Fixed chunk width of the vectorized sweeps, in `u64` lanes. Eight
/// 64-bit lanes span one 64-byte cache line per chunk and map onto
/// one-to-four vector compares depending on the target's SIMD width.
pub const LANES: usize = 8;

/// Position of the **earliest** gap with `gap >= size` (First Fit),
/// or `None` when nothing fits.
#[inline]
pub fn first_fit(gaps: &[u64], size: u64) -> Option<usize> {
    let mut chunks = gaps.chunks_exact(LANES);
    let mut base = 0usize;
    for chunk in &mut chunks {
        // Branchless any-feasible reduction: one OR tree per chunk.
        let mut feasible = false;
        for &g in chunk {
            feasible |= g >= size;
        }
        if feasible {
            for (i, &g) in chunk.iter().enumerate() {
                if g >= size {
                    return Some(base + i);
                }
            }
        }
        base += LANES;
    }
    for (i, &g) in chunks.remainder().iter().enumerate() {
        if g >= size {
            return Some(base + i);
        }
    }
    None
}

/// Position of the **smallest** feasible gap, earliest position on
/// ties (Best Fit), or `None` when nothing fits.
#[inline]
pub fn best_fit(gaps: &[u64], size: u64) -> Option<usize> {
    // Infeasible lanes are masked to `u64::MAX`, which no feasible
    // gap can reach (gaps are capacity-bounded, sizes are >= 1), so a
    // plain min reduction finds the tightest feasible gap.
    let mut best = u64::MAX;
    let mut best_at = usize::MAX;
    let mut base = 0usize;
    let mut chunks = gaps.chunks_exact(LANES);
    for chunk in &mut chunks {
        let mut m = u64::MAX;
        for &g in chunk {
            let key = if g >= size { g } else { u64::MAX };
            m = m.min(key);
        }
        // Strict `<`: an earlier chunk keeps the win on equal gaps.
        if m < best {
            for (i, &g) in chunk.iter().enumerate() {
                if g == m {
                    best = m;
                    best_at = base + i;
                    break;
                }
            }
        }
        base += LANES;
    }
    for (i, &g) in chunks.remainder().iter().enumerate() {
        let key = if g >= size { g } else { u64::MAX };
        if key < best {
            best = key;
            best_at = base + i;
        }
    }
    (best_at != usize::MAX).then_some(best_at)
}

/// Position of the **largest** gap regardless of feasibility,
/// earliest position on ties — provided that largest gap actually
/// fits `size` (Worst Fit). `None` when the slice is empty or the
/// roomiest bin cannot take the item.
#[inline]
pub fn worst_fit(gaps: &[u64], size: u64) -> Option<usize> {
    if gaps.is_empty() {
        return None;
    }
    // Seed with position 0 so the strict `>` comparisons below keep
    // the earliest position on ties — including the all-equal case.
    let mut best = gaps[0];
    let mut best_at = 0usize;
    let mut base = 0usize;
    let mut chunks = gaps.chunks_exact(LANES);
    for chunk in &mut chunks {
        let mut m = 0u64;
        for &g in chunk {
            m = m.max(g);
        }
        if m > best {
            for (i, &g) in chunk.iter().enumerate() {
                if g == m {
                    best = m;
                    best_at = base + i;
                    break;
                }
            }
        }
        base += LANES;
    }
    for (i, &g) in chunks.remainder().iter().enumerate() {
        if g > best {
            best = g;
            best_at = base + i;
        }
    }
    (best >= size).then_some(best_at)
}

/// Per-slot reference for [`first_fit`]: the early-exit sweep the
/// chunked version replaced.
pub fn first_fit_scalar(gaps: &[u64], size: u64) -> Option<usize> {
    gaps.iter().position(|&g| g >= size)
}

/// Per-slot reference for [`best_fit`]: smallest feasible gap, strict
/// `<` keeps the earliest position on ties.
pub fn best_fit_scalar(gaps: &[u64], size: u64) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (i, &g) in gaps.iter().enumerate() {
        if g >= size && best.is_none_or(|(bg, _)| g < bg) {
            best = Some((g, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Per-slot reference for [`worst_fit`]: largest gap (strict `>`
/// keeps the earliest position on ties), then a feasibility check on
/// the winner.
pub fn worst_fit_scalar(gaps: &[u64], size: u64) -> Option<usize> {
    let mut roomiest: Option<(u64, usize)> = None;
    for (i, &g) in gaps.iter().enumerate() {
        if roomiest.is_none_or(|(bg, _)| g > bg) {
            roomiest = Some((g, i));
        }
    }
    match roomiest {
        Some((g, i)) if g >= size => Some(i),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_picks_the_earliest_feasible_gap() {
        let gaps = [3, 9, 4, 9, 2, 9, 9, 9, 1, 9, 9, 9];
        assert_eq!(first_fit(&gaps, 5), Some(1));
        assert_eq!(first_fit(&gaps, 4), Some(1));
        assert_eq!(first_fit(&gaps, 10), None);
        assert_eq!(first_fit(&[], 1), None);
        // Hit in the remainder (slice shorter than one chunk).
        assert_eq!(first_fit(&[1, 2, 7], 6), Some(2));
    }

    #[test]
    fn best_fit_prefers_tight_gaps_then_early_positions() {
        let gaps = [8, 5, 9, 5, 7, 5, 6, 5, 5, 9];
        assert_eq!(best_fit(&gaps, 5), Some(1)); // min 5, earliest at 1
        assert_eq!(best_fit(&gaps, 6), Some(6));
        assert_eq!(best_fit(&gaps, 9), Some(2));
        assert_eq!(best_fit(&gaps, 10), None);
        assert_eq!(best_fit(&[], 1), None);
    }

    #[test]
    fn worst_fit_takes_the_roomiest_bin_or_none() {
        let gaps = [2, 9, 4, 9, 2, 1, 1, 1, 9, 1];
        assert_eq!(worst_fit(&gaps, 5), Some(1)); // max 9, earliest at 1
        assert_eq!(worst_fit(&gaps, 9), Some(1));
        assert_eq!(worst_fit(&gaps, 10), None); // roomiest cannot fit
        assert_eq!(worst_fit(&[], 1), None);
        // All-zero gaps: still reports position 0 if size were 0 —
        // but sizes are >= 1, so a full house yields None.
        assert_eq!(worst_fit(&[0, 0, 0], 1), None);
    }

    #[test]
    fn chunked_scans_agree_with_the_scalar_references() {
        // Deterministic pseudo-random sweep across lengths that cover
        // empty, sub-chunk, exact-chunk, and remainder shapes.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..80usize {
            let gaps: Vec<u64> = (0..len).map(|_| next() % 17).collect();
            for size in 1..=17u64 {
                assert_eq!(
                    first_fit(&gaps, size),
                    first_fit_scalar(&gaps, size),
                    "FF diverged: len={len} size={size} gaps={gaps:?}"
                );
                assert_eq!(
                    best_fit(&gaps, size),
                    best_fit_scalar(&gaps, size),
                    "BF diverged: len={len} size={size} gaps={gaps:?}"
                );
                assert_eq!(
                    worst_fit(&gaps, size),
                    worst_fit_scalar(&gaps, size),
                    "WF diverged: len={len} size={size} gaps={gaps:?}"
                );
            }
        }
    }
}
