//! Streaming online sessions and the unified batch runner.
//!
//! Batch replay ([`Runner`], formerly the `run_packing*` family)
//! knows every event up front; a *session* ingests them one at a
//! time, the way a live cloud allocator sees jobs: an arrival carries
//! only the item's size — its departure is revealed by a later
//! departure event. A [`Session`] wraps an engine, an algorithm, and
//! an optional observer behind one incremental API:
//!
//! * [`arrive`](Session::arrive) / [`depart`](Session::depart) /
//!   [`ingest`](Session::ingest) — feed events in non-decreasing time
//!   order; violations of the online contract (time regression,
//!   duplicate arrivals, unknown departures, a departure *after* an
//!   arrival at the same instant) are typed [`SessionError`]s that
//!   leave the session untouched.
//! * [`metrics`](Session::metrics) — live counters: open bins, load,
//!   usage time accrued so far, peak concurrency.
//! * [`snapshot`](Session::snapshot) / [`Session::resume`] —
//!   journal-based checkpointing: a snapshot records the
//!   configuration plus every applied event, and resuming replays
//!   them into an equivalent session.
//! * [`finish`](Session::finish) — drains into the same
//!   [`PackingOutcome`] the batch path produces, **bit-identical**
//!   to [`Runner`] on the same event order.
//!
//! ## Backends
//!
//! [`Backend::Auto`] (the default) runs on the integer
//! [`TickEngine`] when the session has a declared [`TickGrid`], the
//! algorithm has an integer-engine equivalent
//! ([`PackingAlgorithm::tick_policy`]), and no observer is attached;
//! otherwise it runs on the exact Rational engine. If a streamed
//! event ever leaves the declared grid, the tick books are promoted
//! to exact Rationals mid-run and the session continues — callers
//! never observe which engine ran. [`Backend::Tick`] makes off-grid
//! events a typed error instead; [`Backend::Exact`] forces the
//! Rational engine.
//!
//! ```
//! use dbp_core::session::Session;
//! use dbp_core::{FirstFit, ItemId};
//! use dbp_numeric::rat;
//!
//! let mut s = Session::builder(FirstFit::new()).build().unwrap();
//! s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
//! s.arrive(ItemId(1), rat(3, 4), rat(1, 1)).unwrap();
//! assert_eq!(s.metrics().open_bins, 2);
//! s.depart(ItemId(0), rat(2, 1)).unwrap();
//! s.depart(ItemId(1), rat(3, 1)).unwrap();
//! let out = s.finish().unwrap();
//! assert_eq!(out.total_usage(), rat(2, 1) + rat(2, 1));
//! ```

use crate::algo::{by_name, PackingAlgorithm};
use crate::bin::BinId;
use crate::engine::{event_schedule, PackingEngine, PackingError, PackingOutcome};
use crate::hash::BuildIdHasher;
use crate::item::{Instance, ItemId};
use crate::observe::{EngineObserver, NoopObserver};
use crate::probe::PhaseProbe;
use crate::tick::{CompileError, CompiledInstance, TickEngine, TickPolicy};
use dbp_numeric::Rational;
use dbp_simcore::{EventClass, EventSchedule, StreamEvent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One wire event of a session's stream, keyed by [`ItemId`].
pub type Event = StreamEvent<ItemId>;

/// Which engine a session or runner should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Backend {
    /// Integer tick engine when possible (declared grid, tick-capable
    /// algorithm, no observer), exact Rational engine otherwise —
    /// with transparent mid-run promotion if a streamed event leaves
    /// the grid. Outcomes never depend on which engine ran.
    #[default]
    Auto,
    /// Always the exact Rational engine.
    Exact,
    /// Strictly the integer tick engine: building fails if the
    /// configuration cannot run on it, and off-grid events are
    /// [`SessionError::OffGrid`] instead of a silent fallback.
    Tick,
}

/// The integer grid a streaming session declares up front: the
/// analogue of the LCM scales [`CompiledInstance::compile`] derives
/// from a complete instance.
///
/// `time_scale` is the number of ticks per time unit, `size_scale`
/// the number of units per bin capacity. An event is *on the grid*
/// when its timestamp (relative to the session's first event) is an
/// integer number of ticks within the `u32::MAX` horizon and, for
/// arrivals, its size is an integer number of units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickGrid {
    /// Ticks per time unit (`≥ 1`).
    pub time_scale: u32,
    /// Units per bin capacity (`≥ 1`).
    pub size_scale: u32,
}

impl TickGrid {
    /// A grid with `time_scale` ticks per time unit and `size_scale`
    /// units per bin capacity. Both must be nonzero.
    pub fn new(time_scale: u32, size_scale: u32) -> TickGrid {
        assert!(time_scale >= 1, "time_scale must be >= 1");
        assert!(size_scale >= 1, "size_scale must be >= 1");
        TickGrid {
            time_scale,
            size_scale,
        }
    }

    /// The exact grid of a complete instance (its denominator LCMs),
    /// or the reason the instance does not fit tick space.
    pub fn for_instance(instance: &Instance) -> Result<TickGrid, CompileError> {
        let compiled = CompiledInstance::compile(instance)?;
        Ok(TickGrid {
            time_scale: compiled.time_scale() as u32,
            size_scale: compiled.size_scale() as u32,
        })
    }

    /// Size in units, if `size` lies on the size grid.
    fn units_of(self, size: Rational) -> Option<u64> {
        // Sizes are pre-validated in (0, 1], so an on-grid size is
        // automatically in 1..=size_scale.
        size.scaled_to(self.size_scale as i128).map(|u| u as u64)
    }

    /// `true` iff `t` itself lies on the time grid (used for the
    /// first event, which fixes the session origin).
    fn aligned(self, t: Rational) -> bool {
        t.scaled_to(self.time_scale as i128).is_some()
    }
}

/// Errors surfaced by sessions and the unified [`Runner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// An engine-level rejection (time regression, duplicate arrival,
    /// unknown departure, infeasible placement, …).
    Packing(PackingError),
    /// The instance handed to a strict-tick [`Runner`] does not fit
    /// tick space.
    Compile(CompileError),
    /// [`Backend::Tick`] was requested but the configuration cannot
    /// run on the integer engine (no grid, no tick-capable algorithm,
    /// or an observer is attached).
    TickUnavailable(&'static str),
    /// A streamed event left the declared [`TickGrid`] under strict
    /// [`Backend::Tick`].
    OffGrid {
        /// Which quantity was off the grid (`"time"` or `"size"`).
        what: &'static str,
        /// The offending value.
        value: Rational,
    },
    /// A departure was submitted after an arrival at the same
    /// instant. Intervals are half-open, so the engine's canonical
    /// order processes all departures of an instant before its
    /// arrivals; accepting the reverse would silently diverge from
    /// the batch replay.
    DepartureAfterArrival {
        /// The shared timestamp.
        time: Rational,
    },
    /// An arriving item's size is outside `(0, 1]`.
    InvalidSize {
        /// The arriving item.
        id: ItemId,
        /// The rejected size.
        size: Rational,
    },
    /// [`Session::resume`] could not reconstruct the checkpointed
    /// algorithm from its name (seeded, scripted, and
    /// instance-dependent algorithms need
    /// [`Session::resume_with`]).
    UnknownAlgorithm(String),
    /// [`Session::resume_with`] was handed an algorithm whose name
    /// does not match the checkpoint.
    AlgorithmMismatch {
        /// Name recorded in the snapshot.
        expected: String,
        /// Name of the supplied algorithm.
        got: String,
    },
    /// [`Session::snapshot`] on a session built with
    /// [`SessionBuilder::without_checkpoints`].
    CheckpointsDisabled,
    /// An event was routed to a shard a multi-session driver does not
    /// have (sharded fleets live in `dbp-par`; the variant lives here
    /// so fleet rejections stay inside the one typed error space).
    UnknownShard {
        /// The requested shard.
        shard: usize,
        /// How many shards exist.
        shards: usize,
    },
}

impl From<PackingError> for SessionError {
    fn from(e: PackingError) -> SessionError {
        SessionError::Packing(e)
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Packing(e) => write!(f, "{e}"),
            SessionError::Compile(e) => write!(f, "tick compilation failed: {e}"),
            SessionError::TickUnavailable(why) => {
                write!(f, "tick backend unavailable: {why}")
            }
            SessionError::OffGrid { what, value } => {
                write!(f, "{what} {value} off the declared tick grid")
            }
            SessionError::DepartureAfterArrival { time } => write!(
                f,
                "departure after an arrival at the same instant {time} \
                 (half-open intervals: submit departures first)"
            ),
            SessionError::InvalidSize { id, size } => {
                write!(f, "item {id}: size {size} outside (0, 1]")
            }
            SessionError::UnknownAlgorithm(name) => {
                write!(f, "cannot reconstruct algorithm `{name}` from its name")
            }
            SessionError::AlgorithmMismatch { expected, got } => {
                write!(f, "checkpoint records algorithm `{expected}`, got `{got}`")
            }
            SessionError::CheckpointsDisabled => {
                write!(f, "session was built without checkpoint support")
            }
            SessionError::UnknownShard { shard, shards } => {
                write!(f, "no shard {shard} in a fleet of {shards}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A batched-ingestion failure: events before `index` were applied,
/// the event at `index` was rejected, nothing after it was touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Index of the rejected event within the submitted batch.
    pub index: usize,
    /// Why it was rejected.
    pub error: SessionError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchError {}

/// Live counters of a running session (see [`Session::metrics`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Session clock (time of the last applied event).
    pub now: Option<Rational>,
    /// Total events applied.
    pub events: u64,
    /// Arrivals applied.
    pub arrivals: u64,
    /// Departures applied.
    pub departures: u64,
    /// Currently open bins.
    pub open_bins: usize,
    /// Currently active items.
    pub active_items: usize,
    /// Bins ever opened.
    pub bins_opened: usize,
    /// Peak number of simultaneously open bins so far.
    pub peak_open_bins: usize,
    /// Total level across the open bins (current load).
    pub load: Rational,
    /// Usage time `Σ_k |U_k|` accrued so far: closed bins fully, open
    /// bins up to the session clock. The objective-to-date.
    pub usage_time: Rational,
    /// Workload volume `vol(R) = Σᵢ sᵢ·lenᵢ = ∫ load dt` accrued so
    /// far (Proposition 1 lower bound on OPT). `None` unless the
    /// session was built with
    /// [`telemetry`](SessionBuilder::telemetry).
    #[serde(default)]
    pub vol: Option<Rational>,
    /// Busy time `span(R)` — total time with at least one active item
    /// — accrued so far (Proposition 2 lower bound on OPT). `None`
    /// unless telemetry is enabled.
    #[serde(default)]
    pub span: Option<Rational>,
    /// Shortest completed item lifetime so far (`None` until an item
    /// departs, or without telemetry).
    #[serde(default)]
    pub min_lifetime: Option<Rational>,
    /// Longest completed item lifetime so far (`None` until an item
    /// departs, or without telemetry).
    #[serde(default)]
    pub max_lifetime: Option<Rational>,
}

impl SessionMetrics {
    /// The paper's lower bound on the optimum for the stream so far:
    /// `max(vol(R), span(R))` (Propositions 1–2). `None` without
    /// telemetry.
    pub fn lower_bound(&self) -> Option<Rational> {
        match (self.vol, self.span) {
            (Some(v), Some(s)) => Some(v.max(s)),
            _ => None,
        }
    }

    /// Estimated `µ = max duration / min duration` over *completed*
    /// items. `None` until at least one item has departed (the online
    /// contract makes every lifetime positive, so the quotient is
    /// well-defined).
    pub fn mu_estimate(&self) -> Option<Rational> {
        match (self.min_lifetime, self.max_lifetime) {
            (Some(lo), Some(hi)) if lo.is_positive() => Some(hi / lo),
            _ => None,
        }
    }

    /// Live *upper estimate* of the competitive ratio:
    /// `usage_time / max(vol, span)`. Since `OPT ≥ max(vol, span)`,
    /// the true ratio `usage/OPT` is at most this value. `None`
    /// without telemetry or while the lower bound is still zero.
    pub fn ratio_upper_estimate(&self) -> Option<Rational> {
        let bound = self.lower_bound()?;
        bound.is_positive().then(|| self.usage_time / bound)
    }
}

/// Incremental `vol(R)`/`span(R)` accounting over the event stream
/// (engine-independent, so it works on every backend — including
/// tick, which observers cannot watch).
///
/// The accounting is *deferred* so the per-event hot path does no
/// exact arithmetic: `vol(R) = Σᵢ sᵢ·lenᵢ` accrues one multiply per
/// **departure** (not a `load·dt` integration per event), and
/// `span(R)` accrues only at busy/idle **transitions**. The live
/// contributions of still-active items are folded in on demand by
/// [`vol_at`](Self::vol_at)/[`span_at`](Self::span_at) — both exact,
/// since Rational addition is associative and commutative the totals
/// are bit-identical to eager integration.
#[derive(Debug, Clone, Default)]
struct Telemetry {
    /// Start of the current busy segment (`Some` while items are
    /// active).
    busy_since: Option<Rational>,
    active: usize,
    /// `Σ s·len` over completed items that has been *folded*: bucket
    /// overflow spill plus the exact slow path. The live total is
    /// this plus the [`vol_buckets`](Self::vol_buckets) sums.
    vol: Rational,
    /// Unreduced per-denominator sums of `s·len` products: the
    /// product `(a/b)·(e/f)` lands in bucket `b·f` as a plain integer
    /// add of `a·e` — no gcd on the departure hot path. Folding a
    /// bucket reduces once; since exact addition is associative and
    /// commutative the folded total is bit-identical to eager
    /// accumulation.
    vol_buckets: Vec<(i128, i128)>,
    /// Total length of *closed* busy segments.
    span: Rational,
    items: std::collections::HashMap<ItemId, (Rational, Rational), BuildIdHasher>,
    min_lifetime: Option<Rational>,
    max_lifetime: Option<Rational>,
}

impl Telemetry {
    fn on_arrival(&mut self, id: ItemId, size: Rational, t: Rational) {
        if self.active == 0 {
            self.busy_since = Some(t);
        }
        self.items.insert(id, (t, size));
        self.active += 1;
    }

    /// Caps the bucket list: more distinct denominators than this and
    /// the oldest bucket is folded into [`vol`](Self::vol) to make
    /// room. Grid-based workloads see a handful of denominators.
    const MAX_VOL_BUCKETS: usize = 32;

    /// Accrues one completed item's `s·len` into the denominator
    /// buckets without reducing; overflow falls back to the exact
    /// reduced path.
    fn accrue_vol(&mut self, size: Rational, lifetime: Rational) {
        let (num, den) = match (
            size.numer().checked_mul(lifetime.numer()),
            size.denom().checked_mul(lifetime.denom()),
        ) {
            (Some(num), Some(den)) => (num, den),
            _ => {
                self.vol += size * lifetime;
                return;
            }
        };
        if let Some(slot) = self.vol_buckets.iter_mut().find(|(d, _)| *d == den) {
            match slot.1.checked_add(num) {
                Some(sum) => slot.1 = sum,
                None => {
                    self.vol += Rational::new(slot.1, den);
                    slot.1 = num;
                }
            }
            return;
        }
        if self.vol_buckets.len() == Self::MAX_VOL_BUCKETS {
            let (d, n) = self.vol_buckets.remove(0);
            self.vol += Rational::new(n, d);
        }
        self.vol_buckets.push((den, num));
    }

    fn on_departure(&mut self, id: ItemId, t: Rational) {
        if let Some((t0, size)) = self.items.remove(&id) {
            // The same-instant ordering contract makes lifetimes
            // strictly positive, so µ̂ never divides by zero.
            let lifetime = t - t0;
            self.accrue_vol(size, lifetime);
            self.min_lifetime = Some(match self.min_lifetime {
                Some(lo) => lo.min(lifetime),
                None => lifetime,
            });
            self.max_lifetime = Some(match self.max_lifetime {
                Some(hi) => hi.max(lifetime),
                None => lifetime,
            });
            self.active -= 1;
            if self.active == 0 {
                if let Some(since) = self.busy_since.take() {
                    self.span += t - since;
                }
            }
        }
    }

    /// `vol(R)` up to `now`: completed items (folded spill plus the
    /// denominator buckets) plus the partial `s·(now − t₀)` of every
    /// still-active item.
    fn vol_at(&self, now: Option<Rational>) -> Rational {
        let mut vol = self.vol;
        for &(den, num) in &self.vol_buckets {
            vol += Rational::new(num, den);
        }
        if let Some(now) = now {
            for &(t0, size) in self.items.values() {
                vol += size * (now - t0);
            }
        }
        vol
    }

    /// `span(R)` up to `now`: closed busy segments plus the running
    /// one.
    fn span_at(&self, now: Option<Rational>) -> Rational {
        match (self.busy_since, now) {
            (Some(since), Some(now)) => self.span + (now - since),
            _ => self.span,
        }
    }
}

/// A journal checkpoint of a session: its configuration plus every
/// applied event, in order. Serializable through the workspace data
/// model; [`Session::resume`] replays it into an equivalent session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Name of the session's algorithm.
    pub algorithm: String,
    /// The backend the session was built with (the *request*, not the
    /// engine currently in use — replaying the same events through
    /// the same request reproduces any promotion deterministically).
    pub backend: Backend,
    /// The declared tick grid, if any.
    pub grid: Option<TickGrid>,
    /// Whether the session tracked stream telemetry
    /// ([`SessionBuilder::telemetry`]); resuming replays it so the
    /// `vol`/`span` accounting continues seamlessly.
    #[serde(default)]
    pub telemetry: bool,
    /// Every applied event, in application order.
    pub events: Vec<Event>,
}

/// The engine a session is currently running on.
// Not boxed: a session owns exactly one `Core` (never collections of
// them), so the variant size gap costs a few hundred bytes per
// session, while boxing would put a pointer hop on the per-event hot
// path.
#[allow(clippy::large_enum_variant)]
enum Core {
    /// Exact Rational engine.
    Exact(PackingEngine),
    /// Tick backend selected but no event applied yet: the engine is
    /// created at the first event, whose timestamp fixes the origin.
    TickIdle,
    /// Live integer engine.
    Tick(TickEngine),
}

/// Where the next event must be dispatched (computed with the books
/// borrowed immutably, so promotion can mutate the session freely).
enum Route {
    /// Exact engine, as-is.
    Exact,
    /// First event of a tick session: build the engine at this
    /// origin.
    TickFirst {
        /// Size in units (0 for departures, unused).
        units: u64,
    },
    /// Live tick engine.
    Tick {
        /// Event tick relative to the session origin.
        tick: u64,
        /// Size in units (0 for departures, unused).
        units: u64,
    },
    /// The event is off the grid: promote to exact (or error under
    /// strict tick).
    Promote {
        /// Which quantity was off the grid.
        what: &'static str,
        /// The offending value.
        value: Rational,
    },
}

/// Configures and builds a [`Session`] (see [`Session::builder`]).
pub struct SessionBuilder<'s> {
    algo: Box<dyn PackingAlgorithm + 's>,
    observer: Option<&'s mut dyn EngineObserver>,
    probe: Option<&'s mut dyn PhaseProbe>,
    backend: Backend,
    grid: Option<TickGrid>,
    journal: bool,
    telemetry: bool,
}

impl<'s> SessionBuilder<'s> {
    /// Attaches a passive observer. Observers see every engine event;
    /// they force the exact Rational engine (the integer engine has
    /// no instrumentation hooks).
    pub fn observer(mut self, obs: &'s mut dyn EngineObserver) -> SessionBuilder<'s> {
        self.observer = Some(obs);
        self
    }

    /// Attaches a [`PhaseProbe`] for self-profiling. Unlike observers
    /// probes are wired into **both** engines, so attaching one does
    /// not change which backend runs — outcomes stay bit-identical to
    /// an unprobed session.
    pub fn probe(mut self, probe: &'s mut dyn PhaseProbe) -> SessionBuilder<'s> {
        self.probe = Some(probe);
        self
    }

    /// Selects the engine policy (default [`Backend::Auto`]).
    pub fn backend(mut self, backend: Backend) -> SessionBuilder<'s> {
        self.backend = backend;
        self
    }

    /// Declares the integer grid for the tick backend. Without a
    /// grid, [`Backend::Auto`] always runs exact and
    /// [`Backend::Tick`] fails to build.
    pub fn grid(mut self, grid: TickGrid) -> SessionBuilder<'s> {
        self.grid = Some(grid);
        self
    }

    /// Disables the event journal. Saves one `Vec` push per event on
    /// the hot path; [`Session::snapshot`] becomes
    /// [`SessionError::CheckpointsDisabled`].
    pub fn without_checkpoints(mut self) -> SessionBuilder<'s> {
        self.journal = false;
        self
    }

    /// Enables stream telemetry: incremental `vol(R)` and `span(R)`
    /// accounting plus completed-item lifetime extremes, surfaced
    /// through [`Session::metrics`] (`vol`, `span`, `min_lifetime`,
    /// `max_lifetime` and the derived
    /// [`lower_bound`](SessionMetrics::lower_bound) /
    /// [`ratio_upper_estimate`](SessionMetrics::ratio_upper_estimate)).
    ///
    /// Telemetry is stream-derived, not an observer — it works on
    /// **every** backend, including the integer tick engine, and does
    /// not force the exact engine. Off by default: it costs a hash-map
    /// insert/remove plus a handful of exact multiplications per
    /// event.
    pub fn telemetry(mut self) -> SessionBuilder<'s> {
        self.telemetry = true;
        self
    }

    /// Resolves the backend and builds the session. Fails only for
    /// [`Backend::Tick`] configurations that cannot run on the
    /// integer engine.
    pub fn build(mut self) -> Result<Session<'s>, SessionError> {
        let name = self.algo.name();
        self.algo.reset();
        let policy = self.algo.tick_policy();
        let (core, tick_policy) = match self.backend {
            Backend::Exact => (Core::Exact(PackingEngine::new()), None),
            Backend::Auto => {
                if policy.is_some() && self.grid.is_some() && self.observer.is_none() {
                    (Core::TickIdle, policy)
                } else {
                    (Core::Exact(PackingEngine::new()), None)
                }
            }
            Backend::Tick => {
                if self.observer.is_some() {
                    return Err(SessionError::TickUnavailable(
                        "observers require the exact engine",
                    ));
                }
                let p = policy.ok_or(SessionError::TickUnavailable(
                    "algorithm has no integer-engine equivalent",
                ))?;
                if self.grid.is_none() {
                    return Err(SessionError::TickUnavailable("no tick grid declared"));
                }
                (Core::TickIdle, Some(p))
            }
        };
        Ok(Session {
            algo: self.algo,
            observer: self.observer,
            probe: self.probe,
            noop: NoopObserver,
            backend: self.backend,
            strict: self.backend == Backend::Tick,
            grid: self.grid,
            tick_policy,
            core,
            origin_ticks: None,
            time_quot_memo: (0, 0),
            size_quot_memo: (0, 0),
            name,
            now: None,
            arrival_at_now: false,
            journal: self.journal.then(Vec::new),
            telemetry: self.telemetry.then(Telemetry::default),
            arrivals: 0,
            departures: 0,
        })
    }
}

/// An incremental online packing session: the streaming counterpart
/// of the batch [`Runner`], producing bit-identical outcomes on the
/// same event order. See the [module docs](self) for the contract.
pub struct Session<'s> {
    algo: Box<dyn PackingAlgorithm + 's>,
    observer: Option<&'s mut dyn EngineObserver>,
    probe: Option<&'s mut dyn PhaseProbe>,
    noop: NoopObserver,
    backend: Backend,
    strict: bool,
    grid: Option<TickGrid>,
    /// `Some` while the session may run (or is running) on the tick
    /// engine; cleared permanently on promotion.
    tick_policy: Option<TickPolicy>,
    core: Core,
    /// First event's timestamp on the tick grid (tick sessions
    /// only): `origin.scaled_to(time_scale)`, cached so the per-event
    /// time conversion is one `scaled_to` plus an integer subtract
    /// instead of a full `Rational` subtraction.
    origin_ticks: Option<i128>,
    /// One-entry divisor memos — `(den, scale / den)` for the last
    /// on-grid denominator seen on each axis. Streams overwhelmingly
    /// reuse a handful of denominators, so the per-event grid
    /// conversion usually replaces a hardware division with a
    /// compare plus a multiply. `(0, _)` is the empty memo: reduced
    /// denominators are always positive.
    time_quot_memo: (i128, i128),
    size_quot_memo: (i128, i128),
    name: String,
    now: Option<Rational>,
    /// `true` while an arrival has been applied at the current
    /// instant (rejects misordered equal-time departures).
    arrival_at_now: bool,
    journal: Option<Vec<Event>>,
    telemetry: Option<Telemetry>,
    arrivals: u64,
    departures: u64,
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("algorithm", &self.name)
            .field("backend", &self.backend)
            .field("tick_active", &self.tick_active())
            .field("now", &self.now)
            .field("arrivals", &self.arrivals)
            .field("departures", &self.departures)
            .finish_non_exhaustive()
    }
}

impl<'s> Session<'s> {
    /// Starts configuring a session around `algo`.
    pub fn builder(algo: impl PackingAlgorithm + 's) -> SessionBuilder<'s> {
        SessionBuilder {
            algo: Box::new(algo),
            observer: None,
            probe: None,
            backend: Backend::Auto,
            grid: None,
            journal: true,
            telemetry: false,
        }
    }

    /// Rebuilds a session from a checkpoint by reconstructing the
    /// algorithm from its recorded name and replaying the journal.
    /// Fails with [`SessionError::UnknownAlgorithm`] for algorithms
    /// that need external state ([`Session::resume_with`] covers
    /// those).
    pub fn resume(snapshot: &SessionSnapshot) -> Result<Session<'static>, SessionError> {
        let algo = by_name(&snapshot.algorithm)
            .ok_or_else(|| SessionError::UnknownAlgorithm(snapshot.algorithm.clone()))?;
        Self::replay(snapshot, algo)
    }

    /// [`Session::resume`] with a caller-supplied algorithm (for
    /// seeded, scripted, or instance-dependent algorithms the name
    /// alone cannot reconstruct). The algorithm's name must match the
    /// checkpoint.
    pub fn resume_with<'a>(
        snapshot: &SessionSnapshot,
        algo: impl PackingAlgorithm + 'a,
    ) -> Result<Session<'a>, SessionError> {
        if algo.name() != snapshot.algorithm {
            return Err(SessionError::AlgorithmMismatch {
                expected: snapshot.algorithm.clone(),
                got: algo.name(),
            });
        }
        Self::replay(snapshot, algo)
    }

    fn replay<'a>(
        snapshot: &SessionSnapshot,
        algo: impl PackingAlgorithm + 'a,
    ) -> Result<Session<'a>, SessionError> {
        let mut builder = Session::builder(algo).backend(snapshot.backend);
        if let Some(grid) = snapshot.grid {
            builder = builder.grid(grid);
        }
        if snapshot.telemetry {
            builder = builder.telemetry();
        }
        let mut session = builder.build()?;
        // Journaled events were all applied once, so replay cannot
        // fail on a well-formed snapshot; corrupt ones surface the
        // offending event's error.
        session.ingest(&snapshot.events).map_err(|e| e.error)?;
        Ok(session)
    }

    /// The algorithm's name (as reported in the final outcome).
    pub fn algorithm(&self) -> &str {
        &self.name
    }

    /// The backend the session was built with (the request;
    /// [`tick_active`](Self::tick_active) tells which engine is
    /// actually running).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// `true` while the session is on (or still headed for) the
    /// integer tick engine.
    pub fn tick_active(&self) -> bool {
        !matches!(self.core, Core::Exact(_))
    }

    /// Session clock: time of the last applied event.
    pub fn now(&self) -> Option<Rational> {
        self.now
    }

    /// `true` iff `id` has arrived and not departed.
    pub fn is_active(&self, id: ItemId) -> bool {
        match &self.core {
            Core::Exact(e) => e.is_active(id),
            Core::Tick(e) => e.is_active(id),
            Core::TickIdle => false,
        }
    }

    /// Monotone-clock check shared by both event kinds.
    #[inline]
    fn check_monotone(&self, t: Rational) -> Result<(), SessionError> {
        if let Some(now) = self.now {
            if t < now {
                return Err(SessionError::Packing(PackingError::TimeRegression {
                    now,
                    event: t,
                }));
            }
        }
        Ok(())
    }

    /// Integer `value.scaled_to(scale)` through a one-entry divisor
    /// memo; `None` when `value` is off the `1/scale` grid. Off-grid
    /// denominators are not memoized — they promote the session, so
    /// each is seen at most once.
    #[inline]
    fn memo_scaled(memo: &mut (i128, i128), value: Rational, scale: i128) -> Option<i128> {
        debug_assert!(
            (1..=u32::MAX as i128).contains(&scale),
            "grid scales are u32-bounded"
        );
        let den = value.denom();
        if memo.0 != den {
            if scale % den != 0 {
                return None;
            }
            *memo = (den, scale / den);
        }
        // The quotient is below 2^32 (grid scales are u32-bounded),
        // so any numerator below 2^63 multiplies without overflow on
        // the inlined 128-bit product — `checked_mul` is a libcall on
        // x86-64 and this sits on the per-event streaming path.
        let num = value.numer();
        if num.unsigned_abs() < 1 << 63 {
            return Some(num * memo.1);
        }
        num.checked_mul(memo.1)
    }

    /// Plans the dispatch of an event at `t` (size `Some` for
    /// arrivals); only the divisor memos are mutated.
    #[inline]
    fn route(&mut self, t: Rational, size: Option<Rational>) -> Route {
        let grid = match self.grid {
            Some(g) => g,
            None => return Route::Exact,
        };
        match &self.core {
            Core::Exact(_) => Route::Exact,
            Core::TickIdle => {
                if !grid.aligned(t) {
                    return Route::Promote {
                        what: "time",
                        value: t,
                    };
                }
                let units = match size {
                    Some(s) => match grid.units_of(s) {
                        Some(u) => u,
                        None => {
                            return Route::Promote {
                                what: "size",
                                value: s,
                            }
                        }
                    },
                    None => 0,
                };
                Route::TickFirst { units }
            }
            Core::Tick(_) => {
                let origin = self
                    .origin_ticks
                    .expect("live tick engine has an origin tick");
                // Monotonicity (checked before routing) puts `t` at
                // or after the origin, so the offset is non-negative.
                let on_grid =
                    Self::memo_scaled(&mut self.time_quot_memo, t, grid.time_scale as i128);
                let tick = match on_grid {
                    Some(on_grid) if on_grid - origin <= u32::MAX as i128 => {
                        debug_assert!(on_grid >= origin, "events routed before the origin");
                        (on_grid - origin) as u64
                    }
                    _ => {
                        return Route::Promote {
                            what: "time",
                            value: t,
                        }
                    }
                };
                let units = match size {
                    // Sizes are pre-validated in (0, 1], so an
                    // on-grid size is automatically in 1..=size_scale.
                    Some(s) => match Self::memo_scaled(
                        &mut self.size_quot_memo,
                        s,
                        grid.size_scale as i128,
                    ) {
                        Some(u) => u as u64,
                        None => {
                            return Route::Promote {
                                what: "size",
                                value: s,
                            }
                        }
                    },
                    None => 0,
                };
                Route::Tick { tick, units }
            }
        }
    }

    /// Converts the tick books to exact Rationals and continues on
    /// the exact engine (the `Backend::Auto` off-grid path).
    fn promote(&mut self) {
        let core = std::mem::replace(&mut self.core, Core::TickIdle);
        let engine = match core {
            // No event applied yet: the original algorithm is still
            // fresh, keep driving it directly.
            Core::TickIdle => PackingEngine::new(),
            // Mid-run: the tick engine embodied the policy and never
            // drove the stored algorithm, so its state (e.g. a
            // `*Fast` tree) is stale. Swap in the stateless linear
            // equivalent, which decides correctly from any books.
            Core::Tick(engine) => {
                let policy = self.tick_policy.expect("tick core implies a policy");
                self.algo = policy.linear_algo();
                engine.into_exact()
            }
            Core::Exact(engine) => engine,
        };
        self.core = Core::Exact(engine);
        self.tick_policy = None;
    }

    /// Applies an arrival: `id` of `size` at time `t`. Returns the
    /// bin the item was placed into.
    pub fn arrive(
        &mut self,
        id: ItemId,
        size: Rational,
        t: Rational,
    ) -> Result<BinId, SessionError> {
        self.check_monotone(t)?;
        // `0 < size <= 1` via raw parts: denominators are positive,
        // so `size <= 1  <=>  num <= den` — two integer compares, no
        // cross-multiplication on the per-event path.
        if size.numer() <= 0 || size.numer() > size.denom() {
            return Err(SessionError::InvalidSize { id, size });
        }
        // Hot path: a live tick engine fed an on-grid event. The
        // conversion and dispatch run straight through here; the
        // general `Route` machinery below only handles the cold
        // cases (exact core, first event, off-grid promotion).
        if let (Core::Tick(_), Some(grid)) = (&self.core, self.grid) {
            let origin = self
                .origin_ticks
                .expect("a live tick engine always has an origin tick");
            let on_grid = Self::memo_scaled(&mut self.time_quot_memo, t, grid.time_scale as i128);
            let units = Self::memo_scaled(&mut self.size_quot_memo, size, grid.size_scale as i128);
            if let (Some(on_grid), Some(units)) = (on_grid, units) {
                if on_grid - origin <= u32::MAX as i128 {
                    debug_assert!(
                        on_grid >= origin,
                        "monotone events never precede the origin"
                    );
                    let tick = (on_grid - origin) as u64;
                    let Core::Tick(engine) = &mut self.core else {
                        unreachable!("core variant checked above");
                    };
                    let bin = match self.probe.as_deref_mut() {
                        Some(p) => engine.arrive_probed(p, id, units as u64, tick)?,
                        None => engine.arrive(id, units as u64, tick)?,
                    };
                    self.note_arrival(id, size, t);
                    return Ok(bin);
                }
            }
        }
        // Duplicate arrivals surface from the engines themselves on
        // the on-grid paths (both validate before dispatching to any
        // observer); only the off-grid arm needs the explicit check,
        // to keep `DuplicateItem` ranked above off-grid handling.
        let mut route = self.route(t, Some(size));
        if let Route::Promote { what, value } = route {
            if self.is_active(id) {
                return Err(SessionError::Packing(PackingError::DuplicateItem(id)));
            }
            if self.strict {
                return Err(SessionError::OffGrid { what, value });
            }
            self.promote();
            route = Route::Exact;
        }
        let bin = match route {
            Route::Exact => {
                let Core::Exact(engine) = &mut self.core else {
                    unreachable!("exact route implies exact core");
                };
                let obs: &mut dyn EngineObserver = match self.observer.as_deref_mut() {
                    Some(o) => o,
                    None => &mut self.noop,
                };
                match self.probe.as_deref_mut() {
                    Some(p) => engine.arrive_probed(self.algo.as_mut(), obs, p, id, size, t)?,
                    None => engine.arrive_observed(self.algo.as_mut(), obs, id, size, t)?,
                }
            }
            Route::TickFirst { units } => {
                let grid = self.grid.expect("tick route implies a grid");
                let policy = self.tick_policy.expect("tick route implies a policy");
                let mut engine = TickEngine::with_grid(
                    policy,
                    t,
                    grid.time_scale as i128,
                    grid.size_scale as i128,
                );
                let bin = match self.probe.as_deref_mut() {
                    Some(p) => engine.arrive_probed(p, id, units, 0)?,
                    None => engine.arrive(id, units, 0)?,
                };
                // `route` only returns `TickFirst` after
                // `grid.aligned(t)`, so the origin is on the grid.
                self.origin_ticks = t.scaled_to(grid.time_scale as i128);
                self.core = Core::Tick(engine);
                bin
            }
            Route::Tick { tick, units } => {
                let Core::Tick(engine) = &mut self.core else {
                    unreachable!("tick route implies tick core");
                };
                match self.probe.as_deref_mut() {
                    Some(p) => engine.arrive_probed(p, id, units, tick)?,
                    None => engine.arrive(id, units, tick)?,
                }
            }
            Route::Promote { .. } => unreachable!("promotion handled above"),
        };
        self.note_arrival(id, size, t);
        Ok(bin)
    }

    /// Post-event bookkeeping shared by every successful arrival:
    /// clock commit, counters, telemetry, and the replay journal.
    #[inline]
    fn note_arrival(&mut self, id: ItemId, size: Rational, t: Rational) {
        self.now = Some(t);
        self.arrival_at_now = true;
        self.arrivals += 1;
        if let Some(tele) = &mut self.telemetry {
            tele.on_arrival(id, size, t);
        }
        if let Some(journal) = &mut self.journal {
            journal.push(StreamEvent::Arrive { id, size, time: t });
        }
    }

    /// Applies a departure of `id` at time `t`. Returns the bin the
    /// item left.
    pub fn depart(&mut self, id: ItemId, t: Rational) -> Result<BinId, SessionError> {
        self.check_monotone(t)?;
        if self.now == Some(t) && self.arrival_at_now {
            return Err(SessionError::DepartureAfterArrival { time: t });
        }
        // Hot path: live tick engine, on-grid departure — mirrors the
        // fused arrival path above.
        if let (Core::Tick(_), Some(grid)) = (&self.core, self.grid) {
            let origin = self
                .origin_ticks
                .expect("a live tick engine always has an origin tick");
            if let Some(on_grid) =
                Self::memo_scaled(&mut self.time_quot_memo, t, grid.time_scale as i128)
            {
                if on_grid - origin <= u32::MAX as i128 {
                    debug_assert!(
                        on_grid >= origin,
                        "monotone events never precede the origin"
                    );
                    let tick = (on_grid - origin) as u64;
                    let Core::Tick(engine) = &mut self.core else {
                        unreachable!("core variant checked above");
                    };
                    let bin = match self.probe.as_deref_mut() {
                        Some(p) => engine.depart_probed(p, id, tick)?,
                        None => engine.depart(id, tick)?,
                    };
                    self.note_departure(id, t);
                    return Ok(bin);
                }
            }
        }
        // Unknown departures surface from the engines themselves on
        // the on-grid paths; only the off-grid arm needs the explicit
        // check, to keep `UnknownItem` ranked above off-grid handling.
        let mut route = self.route(t, None);
        if let Route::Promote { what, value } = route {
            if !self.is_active(id) {
                return Err(SessionError::Packing(PackingError::UnknownItem(id)));
            }
            if self.strict {
                return Err(SessionError::OffGrid { what, value });
            }
            self.promote();
            route = Route::Exact;
        }
        let bin = match route {
            Route::Exact => {
                let Core::Exact(engine) = &mut self.core else {
                    unreachable!("exact route implies exact core");
                };
                let obs: &mut dyn EngineObserver = match self.observer.as_deref_mut() {
                    Some(o) => o,
                    None => &mut self.noop,
                };
                match self.probe.as_deref_mut() {
                    Some(p) => engine.depart_probed(self.algo.as_mut(), obs, p, id, t)?,
                    None => engine.depart_observed(self.algo.as_mut(), obs, id, t)?,
                }
            }
            Route::Tick { tick, .. } => {
                let Core::Tick(engine) = &mut self.core else {
                    unreachable!("tick route implies tick core");
                };
                match self.probe.as_deref_mut() {
                    Some(p) => engine.depart_probed(p, id, tick)?,
                    None => engine.depart(id, tick)?,
                }
            }
            // Nothing has arrived yet, so the departing item cannot
            // be active.
            Route::TickFirst { .. } => {
                return Err(SessionError::Packing(PackingError::UnknownItem(id)));
            }
            Route::Promote { .. } => unreachable!("promotion handled above"),
        };
        self.note_departure(id, t);
        Ok(bin)
    }

    /// Post-event bookkeeping shared by every successful departure.
    #[inline]
    fn note_departure(&mut self, id: ItemId, t: Rational) {
        self.now = Some(t);
        self.arrival_at_now = false;
        self.departures += 1;
        if let Some(tele) = &mut self.telemetry {
            tele.on_departure(id, t);
        }
        if let Some(journal) = &mut self.journal {
            journal.push(StreamEvent::Depart { id, time: t });
        }
    }

    /// Applies one wire event.
    pub fn apply(&mut self, event: &Event) -> Result<BinId, SessionError> {
        match *event {
            StreamEvent::Arrive { id, size, time } => self.arrive(id, size, time),
            StreamEvent::Depart { id, time } => self.depart(id, time),
        }
    }

    /// Applies a batch of events in order. On failure, events before
    /// the reported index were applied and nothing after it was
    /// touched.
    pub fn ingest(&mut self, events: &[Event]) -> Result<(), BatchError> {
        for (index, event) in events.iter().enumerate() {
            self.apply(event)
                .map_err(|error| BatchError { index, error })?;
        }
        Ok(())
    }

    /// Live counters: clock, event tallies, open bins, load, and the
    /// usage time accrued so far.
    pub fn metrics(&self) -> SessionMetrics {
        let (open_bins, active_items, bins_opened, peak_open_bins, load, usage_time) =
            match &self.core {
                Core::Exact(e) => (
                    e.open_bins(),
                    e.active_items(),
                    e.bins_opened(),
                    e.peak_open_bins(),
                    e.load(),
                    e.usage_accrued(),
                ),
                Core::Tick(e) => (
                    e.open_bins(),
                    e.active_items(),
                    e.bins_opened(),
                    e.peak_open_bins(),
                    e.load(),
                    e.usage_accrued(),
                ),
                Core::TickIdle => (0, 0, 0, 0, Rational::ZERO, Rational::ZERO),
            };
        let tele = self.telemetry.as_ref();
        SessionMetrics {
            now: self.now,
            events: self.arrivals + self.departures,
            arrivals: self.arrivals,
            departures: self.departures,
            open_bins,
            active_items,
            bins_opened,
            peak_open_bins,
            load,
            usage_time,
            vol: tele.map(|t| t.vol_at(self.now)),
            span: tele.map(|t| t.span_at(self.now)),
            min_lifetime: tele.and_then(|t| t.min_lifetime),
            max_lifetime: tele.and_then(|t| t.max_lifetime),
        }
    }

    /// Checkpoints the session: configuration plus the full event
    /// journal. Fails if the session was built
    /// [`without_checkpoints`](SessionBuilder::without_checkpoints).
    pub fn snapshot(&self) -> Result<SessionSnapshot, SessionError> {
        let journal = self
            .journal
            .as_ref()
            .ok_or(SessionError::CheckpointsDisabled)?;
        Ok(SessionSnapshot {
            algorithm: self.name.clone(),
            backend: self.backend,
            grid: self.grid,
            telemetry: self.telemetry.is_some(),
            events: journal.clone(),
        })
    }

    /// Finalizes the session into the same [`PackingOutcome`] the
    /// batch path produces. Fails with
    /// [`PackingError::ItemsStillActive`] while items remain active.
    pub fn finish(self) -> Result<PackingOutcome, SessionError> {
        let Session {
            core,
            observer,
            mut noop,
            name,
            ..
        } = self;
        match core {
            Core::Exact(engine) => {
                let obs: &mut dyn EngineObserver = match observer {
                    Some(o) => o,
                    None => &mut noop,
                };
                Ok(engine.finish_observed(&name, obs)?)
            }
            Core::Tick(engine) => Ok(engine.finish(&name)?),
            // No event was ever applied: an empty run.
            Core::TickIdle => {
                let obs: &mut dyn EngineObserver = match observer {
                    Some(o) => o,
                    None => &mut noop,
                };
                Ok(PackingEngine::new().finish_observed(&name, obs)?)
            }
        }
    }
}

/// The unified batch entry point: replays a complete [`Instance`]
/// through a [`Session`], replacing the `run_packing*` free-function
/// family with one builder.
///
/// ```
/// use dbp_core::session::Runner;
/// use dbp_core::{FirstFit, Instance};
/// use dbp_numeric::rat;
///
/// let instance = Instance::builder()
///     .item(rat(1, 2), rat(0, 1), rat(2, 1))
///     .item(rat(3, 4), rat(1, 1), rat(3, 1))
///     .build()
///     .unwrap();
/// let out = Runner::new(&instance).run(&mut FirstFit::new()).unwrap();
/// assert_eq!(out.bins_opened(), 2);
/// ```
///
/// With [`Backend::Auto`] (the default) the run is dispatched to the
/// integer tick engine whenever the algorithm has an integer
/// equivalent, the instance compiles, and no observer is attached —
/// the outcome is bit-identical either way, algorithm name included.
pub struct Runner<'a> {
    instance: &'a Instance,
    schedule: Option<&'a EventSchedule<ItemId>>,
    observer: Option<&'a mut dyn EngineObserver>,
    probe: Option<&'a mut dyn PhaseProbe>,
    backend: Backend,
}

impl<'a> Runner<'a> {
    /// A runner over `instance` with defaults: fresh schedule, no
    /// observer, [`Backend::Auto`].
    pub fn new(instance: &'a Instance) -> Runner<'a> {
        Runner {
            instance,
            schedule: None,
            observer: None,
            probe: None,
            backend: Backend::Auto,
        }
    }

    /// Replays a caller-owned prebuilt schedule (one
    /// [`event_schedule`] shared across many runs) instead of
    /// rebuilding it. The schedule must belong to this instance.
    pub fn schedule(mut self, schedule: &'a EventSchedule<ItemId>) -> Runner<'a> {
        self.schedule = Some(schedule);
        self
    }

    /// Attaches a passive observer (forces the exact engine).
    pub fn observer(mut self, obs: &'a mut dyn EngineObserver) -> Runner<'a> {
        self.observer = Some(obs);
        self
    }

    /// Attaches a self-profiling [`PhaseProbe`]. Probes run on both
    /// engines, so unlike [`observer`](Runner::observer) this does
    /// not change how [`Backend::Auto`] dispatches, and outcomes are
    /// bit-identical to an unprobed run.
    pub fn probe(mut self, probe: &'a mut dyn PhaseProbe) -> Runner<'a> {
        self.probe = Some(probe);
        self
    }

    /// Selects the engine policy (default [`Backend::Auto`]).
    pub fn backend(mut self, backend: Backend) -> Runner<'a> {
        self.backend = backend;
        self
    }

    /// Runs `algo` over the instance and returns the completed
    /// outcome.
    pub fn run(self, algo: &mut dyn PackingAlgorithm) -> Result<PackingOutcome, SessionError> {
        match self.backend {
            Backend::Tick => {
                if self.observer.is_some() {
                    return Err(SessionError::TickUnavailable(
                        "observers require the exact engine",
                    ));
                }
                let policy = algo.tick_policy().ok_or(SessionError::TickUnavailable(
                    "algorithm has no integer-engine equivalent",
                ))?;
                let compiled =
                    CompiledInstance::compile(self.instance).map_err(SessionError::Compile)?;
                algo.reset();
                Self::run_compiled(&compiled, policy, algo, self.probe)
            }
            Backend::Auto => {
                if let (Some(policy), None) = (algo.tick_policy(), self.observer.as_ref()) {
                    if let Ok(compiled) = CompiledInstance::compile(self.instance) {
                        algo.reset();
                        return Self::run_compiled(&compiled, policy, algo, self.probe);
                    }
                }
                self.run_exact(algo)
            }
            Backend::Exact => self.run_exact(algo),
        }
    }

    /// The batch tick path: replay the pre-compiled schedule on the
    /// integer engine. Relabeled with the driven algorithm's own name
    /// so a `FirstFitFast` run reports `FirstFitFast` on both
    /// engines.
    fn run_compiled(
        compiled: &CompiledInstance,
        policy: TickPolicy,
        algo: &mut dyn PackingAlgorithm,
        probe: Option<&mut dyn PhaseProbe>,
    ) -> Result<PackingOutcome, SessionError> {
        let name = algo.name();
        let outcome = match probe {
            Some(p) => compiled.run_probed(policy, p)?,
            None => compiled.run(policy)?,
        };
        Ok(outcome.with_algorithm(&name))
    }

    /// The exact path: drive a (journal-free) streaming session with
    /// the batch schedule.
    fn run_exact(self, algo: &mut dyn PackingAlgorithm) -> Result<PackingOutcome, SessionError> {
        let built;
        let schedule = match self.schedule {
            Some(s) => s,
            None => {
                built = event_schedule(self.instance);
                &built
            }
        };
        let mut builder = Session::builder(algo)
            .backend(Backend::Exact)
            .without_checkpoints();
        if let Some(obs) = self.observer {
            builder = builder.observer(obs);
        }
        if let Some(p) = self.probe {
            builder = builder.probe(p);
        }
        let mut session = builder.build()?;
        for ev in schedule {
            match ev.class {
                EventClass::Arrival => {
                    let size = self.instance.item(ev.payload).size;
                    session.arrive(ev.payload, size, ev.time)?;
                }
                EventClass::Departure => {
                    session.depart(ev.payload, ev.time)?;
                }
                EventClass::Control => {}
            }
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{BestFitFast, FirstFit, FirstFitFast, RandomFit};
    use dbp_numeric::rat;

    /// Mid-run closures, exact fills, equal-time boundaries.
    fn scenario() -> Instance {
        Instance::builder()
            .item(rat(7, 10), rat(0, 1), rat(10, 1))
            .item(rat(2, 5), rat(0, 1), rat(6, 1))
            .item(rat(9, 10), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(1, 1), rat(10, 1))
            .item(rat(3, 10), rat(2, 1), rat(10, 1))
            .item(rat(3, 5), rat(6, 1), rat(10, 1))
            .build()
            .unwrap()
    }

    /// The batch schedule of `instance` as a stream event list.
    fn events_of(instance: &Instance) -> Vec<Event> {
        let schedule = event_schedule(instance);
        schedule
            .iter()
            .map(|ev| match ev.class {
                EventClass::Arrival => StreamEvent::Arrive {
                    id: ev.payload,
                    size: instance.item(ev.payload).size,
                    time: ev.time,
                },
                EventClass::Departure => StreamEvent::Depart {
                    id: ev.payload,
                    time: ev.time,
                },
                EventClass::Control => unreachable!("schedules carry no control events"),
            })
            .collect()
    }

    #[test]
    fn streamed_session_matches_batch_runner() {
        let inst = scenario();
        let batch = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let mut session = Session::builder(FirstFit::new()).build().unwrap();
        session.ingest(&events_of(&inst)).unwrap();
        assert_eq!(session.finish().unwrap(), batch);
    }

    #[test]
    fn tick_hot_path_engages_and_matches_exact() {
        let inst = scenario();
        let grid = TickGrid::for_instance(&inst).unwrap();
        let exact = Runner::new(&inst)
            .backend(Backend::Exact)
            .run(&mut FirstFitFast::new())
            .unwrap();
        let mut session = Session::builder(FirstFitFast::new())
            .grid(grid)
            .build()
            .unwrap();
        assert!(session.tick_active());
        session.ingest(&events_of(&inst)).unwrap();
        assert!(session.tick_active());
        assert_eq!(session.finish().unwrap(), exact);
    }

    #[test]
    fn off_grid_event_promotes_transparently() {
        let inst = scenario();
        // A unit grid: the integer timestamps of `scenario` fit, the
        // half-integer event below does not.
        let grid = TickGrid::new(1, 10);
        let exact = {
            let mut s = Session::builder(FirstFitFast::new())
                .backend(Backend::Exact)
                .build()
                .unwrap();
            s.ingest(&events_of(&inst)).unwrap();
            s.arrive(ItemId(9), rat(1, 2), rat(21, 2)).unwrap();
            s.depart(ItemId(9), rat(11, 1)).unwrap();
            s.finish().unwrap()
        };
        let mut s = Session::builder(FirstFitFast::new())
            .grid(grid)
            .build()
            .unwrap();
        s.ingest(&events_of(&inst)).unwrap();
        assert!(s.tick_active());
        s.arrive(ItemId(9), rat(1, 2), rat(21, 2)).unwrap();
        assert!(!s.tick_active());
        s.depart(ItemId(9), rat(11, 1)).unwrap();
        assert_eq!(s.finish().unwrap(), exact);
    }

    #[test]
    fn mid_run_promotion_preserves_live_metrics() {
        // Promote while bins are open and compare every counter
        // against an exact-only twin.
        let grid = TickGrid::new(1, 4);
        let mut tick = Session::builder(FirstFit::new())
            .grid(grid)
            .build()
            .unwrap();
        let mut exact = Session::builder(FirstFit::new())
            .backend(Backend::Exact)
            .build()
            .unwrap();
        let feed = [
            StreamEvent::Arrive {
                id: ItemId(0),
                size: rat(3, 4),
                time: rat(0, 1),
            },
            StreamEvent::Arrive {
                id: ItemId(1),
                size: rat(1, 2),
                time: rat(1, 1),
            },
            StreamEvent::Depart {
                id: ItemId(0),
                time: rat(2, 1),
            },
            // Off-grid time: forces the promotion.
            StreamEvent::Arrive {
                id: ItemId(2),
                size: rat(1, 4),
                time: rat(5, 2),
            },
        ];
        tick.ingest(&feed).unwrap();
        exact.ingest(&feed).unwrap();
        assert!(!tick.tick_active());
        assert_eq!(tick.metrics(), exact.metrics());
        let drain = [
            StreamEvent::Depart {
                id: ItemId(1),
                time: rat(3, 1),
            },
            StreamEvent::Depart {
                id: ItemId(2),
                time: rat(4, 1),
            },
        ];
        tick.ingest(&drain).unwrap();
        exact.ingest(&drain).unwrap();
        assert_eq!(tick.metrics(), exact.metrics());
        assert_eq!(tick.finish().unwrap(), exact.finish().unwrap());
    }

    #[test]
    fn strict_tick_rejects_off_grid_events() {
        let grid = TickGrid::new(1, 2);
        let mut s = Session::builder(FirstFit::new())
            .backend(Backend::Tick)
            .grid(grid)
            .build()
            .unwrap();
        s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        assert_eq!(
            s.arrive(ItemId(1), rat(1, 2), rat(1, 2)),
            Err(SessionError::OffGrid {
                what: "time",
                value: rat(1, 2)
            })
        );
        assert_eq!(
            s.arrive(ItemId(1), rat(1, 3), rat(1, 1)),
            Err(SessionError::OffGrid {
                what: "size",
                value: rat(1, 3)
            })
        );
        // Still on the tick engine and still usable on-grid.
        assert!(s.tick_active());
        s.arrive(ItemId(1), rat(1, 2), rat(1, 1)).unwrap();
    }

    #[test]
    fn strict_tick_rejects_incapable_configurations() {
        assert_eq!(
            Session::builder(FirstFit::new())
                .backend(Backend::Tick)
                .build()
                .unwrap_err(),
            SessionError::TickUnavailable("no tick grid declared")
        );
        assert_eq!(
            Session::builder(RandomFit::seeded(7))
                .backend(Backend::Tick)
                .grid(TickGrid::new(1, 2))
                .build()
                .unwrap_err(),
            SessionError::TickUnavailable("algorithm has no integer-engine equivalent")
        );
        let mut obs = NoopObserver;
        assert_eq!(
            Session::builder(FirstFit::new())
                .backend(Backend::Tick)
                .grid(TickGrid::new(1, 2))
                .observer(&mut obs)
                .build()
                .unwrap_err(),
            SessionError::TickUnavailable("observers require the exact engine")
        );
    }

    #[test]
    fn online_contract_violations_are_typed_and_harmless() {
        let mut s = Session::builder(FirstFit::new()).build().unwrap();
        s.arrive(ItemId(0), rat(1, 2), rat(1, 1)).unwrap();
        // Time regression.
        assert_eq!(
            s.arrive(ItemId(1), rat(1, 2), rat(0, 1)),
            Err(SessionError::Packing(PackingError::TimeRegression {
                now: rat(1, 1),
                event: rat(0, 1)
            }))
        );
        // Duplicate arrival.
        assert_eq!(
            s.arrive(ItemId(0), rat(1, 4), rat(2, 1)),
            Err(SessionError::Packing(PackingError::DuplicateItem(ItemId(
                0
            ))))
        );
        // Unknown departure.
        assert_eq!(
            s.depart(ItemId(9), rat(2, 1)),
            Err(SessionError::Packing(PackingError::UnknownItem(ItemId(9))))
        );
        // Departure after an arrival at the same instant.
        assert_eq!(
            s.depart(ItemId(0), rat(1, 1)),
            Err(SessionError::DepartureAfterArrival { time: rat(1, 1) })
        );
        // Size outside (0, 1].
        assert_eq!(
            s.arrive(ItemId(1), rat(3, 2), rat(2, 1)),
            Err(SessionError::InvalidSize {
                id: ItemId(1),
                size: rat(3, 2)
            })
        );
        // None of the rejections perturbed the books.
        let m = s.metrics();
        assert_eq!((m.events, m.arrivals, m.active_items), (1, 1, 1));
        // Same-instant departure is fine once time advances, and
        // departure-then-arrival at one instant is the canonical
        // half-open order.
        s.depart(ItemId(0), rat(2, 1)).unwrap();
        s.arrive(ItemId(1), rat(1, 2), rat(2, 1)).unwrap();
        s.depart(ItemId(1), rat(3, 1)).unwrap();
        s.finish().unwrap();
    }

    #[test]
    fn rejected_events_stay_out_of_the_journal() {
        let mut s = Session::builder(FirstFit::new()).build().unwrap();
        s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        let _ = s.arrive(ItemId(0), rat(1, 2), rat(1, 1));
        let _ = s.depart(ItemId(5), rat(1, 1));
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.events.len(), 1);
        let resumed = Session::resume(&snap).unwrap();
        assert_eq!(resumed.metrics(), s.metrics());
    }

    #[test]
    fn live_metrics_track_the_run() {
        let mut s = Session::builder(FirstFit::new()).build().unwrap();
        assert_eq!(s.metrics().usage_time, Rational::ZERO);
        s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        s.arrive(ItemId(1), rat(3, 4), rat(0, 1)).unwrap();
        let m = s.metrics();
        assert_eq!(m.open_bins, 2);
        assert_eq!(m.load, rat(5, 4));
        assert_eq!(m.usage_time, Rational::ZERO);
        s.depart(ItemId(0), rat(2, 1)).unwrap();
        let m = s.metrics();
        assert_eq!(m.open_bins, 1);
        assert_eq!(m.active_items, 1);
        assert_eq!(m.load, rat(3, 4));
        // Bin 0 closed with usage 2; bin 1 open since 0, now = 2.
        assert_eq!(m.usage_time, rat(4, 1));
        s.depart(ItemId(1), rat(3, 1)).unwrap();
        let m = s.metrics();
        assert_eq!(m.usage_time, rat(5, 1));
        assert_eq!(m.peak_open_bins, 2);
        assert_eq!(m.bins_opened, 2);
        let out = s.finish().unwrap();
        assert_eq!(out.total_usage(), rat(5, 1));
    }

    #[test]
    fn tick_and_exact_metrics_agree_mid_run() {
        let inst = scenario();
        let grid = TickGrid::for_instance(&inst).unwrap();
        let events = events_of(&inst);
        let mut tick = Session::builder(FirstFitFast::new())
            .grid(grid)
            .build()
            .unwrap();
        let mut exact = Session::builder(FirstFitFast::new())
            .backend(Backend::Exact)
            .build()
            .unwrap();
        for ev in &events {
            tick.apply(ev).unwrap();
            exact.apply(ev).unwrap();
            assert_eq!(tick.metrics(), exact.metrics());
        }
        assert!(tick.tick_active());
    }

    #[test]
    fn snapshot_resume_round_trips_mid_run() {
        let inst = scenario();
        let events = events_of(&inst);
        for cut in 0..=events.len() {
            let mut s = Session::builder(BestFitFast::new()).build().unwrap();
            s.ingest(&events[..cut]).unwrap();
            let snap = s.snapshot().unwrap();
            // The snapshot survives the serde data model.
            let snap = SessionSnapshot::from_value(&snap.to_value()).unwrap();
            let mut resumed = Session::resume(&snap).unwrap();
            assert_eq!(resumed.metrics(), s.metrics());
            resumed.ingest(&events[cut..]).unwrap();
            s.ingest(&events[cut..]).unwrap();
            assert_eq!(resumed.finish().unwrap(), s.finish().unwrap());
        }
    }

    #[test]
    fn resume_guards_algorithm_identity() {
        let mut s = Session::builder(RandomFit::seeded(42)).build().unwrap();
        s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        let snap = s.snapshot().unwrap();
        // RandomFit is not reconstructible from its name alone…
        assert_eq!(
            Session::resume(&snap).unwrap_err(),
            SessionError::UnknownAlgorithm("RandomFit".into())
        );
        // …but resumes with the matching seeded value.
        let resumed = Session::resume_with(&snap, RandomFit::seeded(42)).unwrap();
        assert_eq!(resumed.metrics(), s.metrics());
        assert_eq!(
            Session::resume_with(&snap, FirstFit::new()).unwrap_err(),
            SessionError::AlgorithmMismatch {
                expected: "RandomFit".into(),
                got: "FirstFit".into()
            }
        );
    }

    #[test]
    fn checkpoints_can_be_disabled() {
        let s = Session::builder(FirstFit::new())
            .without_checkpoints()
            .build()
            .unwrap();
        assert_eq!(s.snapshot().unwrap_err(), SessionError::CheckpointsDisabled);
    }

    #[test]
    fn observers_see_the_streamed_run() {
        struct Count(usize);
        impl EngineObserver for Count {
            fn on_arrival(
                &mut self,
                _: &crate::algo::ArrivalView,
                _: &crate::bin::BinSnapshot<'_>,
            ) {
                self.0 += 1;
            }
        }
        let inst = scenario();
        let mut count = Count(0);
        let mut s = Session::builder(FirstFit::new())
            .observer(&mut count)
            .grid(TickGrid::for_instance(&inst).unwrap())
            .build()
            .unwrap();
        // The observer forces the exact engine even with a grid.
        assert!(!s.tick_active());
        s.ingest(&events_of(&inst)).unwrap();
        s.finish().unwrap();
        assert_eq!(count.0, inst.len());
    }

    #[test]
    fn finish_rejects_active_items_and_empty_runs_succeed() {
        let mut s = Session::builder(FirstFit::new()).build().unwrap();
        s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        assert_eq!(
            s.finish().unwrap_err(),
            SessionError::Packing(PackingError::ItemsStillActive(1))
        );
        let empty = Session::builder(FirstFit::new()).build().unwrap();
        let out = empty.finish().unwrap();
        assert_eq!(out.bins_opened(), 0);
        assert_eq!(out.algorithm(), "FirstFit");
        // Tick-idle sessions drain to the same empty outcome.
        let idle = Session::builder(FirstFit::new())
            .grid(TickGrid::new(1, 2))
            .build()
            .unwrap();
        assert_eq!(idle.finish().unwrap(), out);
    }

    #[test]
    fn runner_matches_the_legacy_entry_points() {
        let inst = scenario();
        #[allow(deprecated)]
        let legacy = crate::engine::run_packing(&inst, &mut FirstFit::new()).unwrap();
        let auto = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let exact = Runner::new(&inst)
            .backend(Backend::Exact)
            .run(&mut FirstFit::new())
            .unwrap();
        let tick = Runner::new(&inst)
            .backend(Backend::Tick)
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(auto, legacy);
        assert_eq!(exact, legacy);
        assert_eq!(tick, legacy);
        // Prebuilt schedules and fast algorithms agree too, name
        // included.
        let sched = event_schedule(&inst);
        let fast = Runner::new(&inst)
            .schedule(&sched)
            .run(&mut FirstFitFast::new())
            .unwrap();
        assert_eq!(fast.algorithm(), "FirstFitFast");
        assert_eq!(fast.bins(), legacy.bins());
        assert_eq!(fast.assignments(), legacy.assignments());
    }

    #[test]
    fn runner_strict_tick_reports_typed_failures() {
        let inst = scenario();
        assert_eq!(
            Runner::new(&inst)
                .backend(Backend::Tick)
                .run(&mut RandomFit::seeded(1))
                .unwrap_err(),
            SessionError::TickUnavailable("algorithm has no integer-engine equivalent")
        );
        let huge = Instance::builder()
            .item(rat(1, 2), rat(1, 99991), rat(2, 1))
            .item(rat(1, 2), rat(1, 99989), rat(2, 1))
            .build()
            .unwrap();
        assert_eq!(
            Runner::new(&huge)
                .backend(Backend::Tick)
                .run(&mut FirstFit::new())
                .unwrap_err(),
            SessionError::Compile(CompileError::TimeScaleOverflow)
        );
        // Auto degrades to the exact engine instead.
        let auto = Runner::new(&huge).run(&mut FirstFit::new()).unwrap();
        assert_eq!(auto.bins_opened(), 1);
    }

    #[test]
    fn runner_auto_promotes_nothing_it_should_not() {
        // An observer must force the exact engine under Auto.
        struct Fail;
        impl EngineObserver for Fail {}
        let inst = scenario();
        let mut obs = Fail;
        let observed = Runner::new(&inst)
            .observer(&mut obs)
            .run(&mut FirstFit::new())
            .unwrap();
        let plain = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(observed, plain);
    }

    #[test]
    fn telemetry_tracks_vol_span_and_lifetimes() {
        let mut s = Session::builder(FirstFit::new())
            .telemetry()
            .build()
            .unwrap();
        // Item 0: size 1/2 over [0, 4]; item 1: size 1/4 over [1, 2];
        // idle gap (4, 6); item 2: size 1/2 over [6, 7].
        s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        s.arrive(ItemId(1), rat(1, 4), rat(1, 1)).unwrap();
        s.depart(ItemId(1), rat(2, 1)).unwrap();
        s.depart(ItemId(0), rat(4, 1)).unwrap();
        s.arrive(ItemId(2), rat(1, 2), rat(6, 1)).unwrap();
        s.depart(ItemId(2), rat(7, 1)).unwrap();
        let m = s.metrics();
        // vol = Σ sᵢ·lenᵢ = 1/2·4 + 1/4·1 + 1/2·1 = 11/4.
        assert_eq!(m.vol, Some(rat(11, 4)));
        // span = |[0,4] ∪ [6,7]| = 5 (the idle gap does not count).
        assert_eq!(m.span, Some(rat(5, 1)));
        assert_eq!(m.min_lifetime, Some(rat(1, 1)));
        assert_eq!(m.max_lifetime, Some(rat(4, 1)));
        assert_eq!(m.lower_bound(), Some(rat(5, 1)));
        assert_eq!(m.mu_estimate(), Some(rat(4, 1)));
        // One bin the whole busy time: usage = 5, ratio estimate 1.
        assert_eq!(m.ratio_upper_estimate(), Some(rat(1, 1)));
        s.finish().unwrap();
    }

    #[test]
    fn telemetry_is_backend_independent_and_resumes() {
        let inst = scenario();
        let events = events_of(&inst);
        let grid = TickGrid::for_instance(&inst).unwrap();
        let mut exact = Session::builder(FirstFit::new())
            .backend(Backend::Exact)
            .telemetry()
            .build()
            .unwrap();
        exact.ingest(&events).unwrap();
        let mut tick = Session::builder(FirstFitFast::new())
            .grid(grid)
            .telemetry()
            .build()
            .unwrap();
        tick.ingest(&events).unwrap();
        assert!(tick.tick_active());
        let (me, mt) = (exact.metrics(), tick.metrics());
        // Stream-derived telemetry cannot depend on the engine.
        assert_eq!(me.vol, mt.vol);
        assert_eq!(me.span, mt.span);
        assert_eq!(me.min_lifetime, mt.min_lifetime);
        assert_eq!(me.max_lifetime, mt.max_lifetime);
        assert!(me.vol.is_some() && me.vol.unwrap().is_positive());
        assert!(me.ratio_upper_estimate().unwrap() >= Rational::ONE);
        // Resuming a telemetry session keeps the accounting running.
        let cut = events.len() / 2;
        let mut first = Session::builder(FirstFit::new())
            .telemetry()
            .build()
            .unwrap();
        first.ingest(&events[..cut]).unwrap();
        let snap = first.snapshot().unwrap();
        assert!(snap.telemetry);
        let mut resumed = Session::resume(&snap).unwrap();
        resumed.ingest(&events[cut..]).unwrap();
        assert_eq!(resumed.metrics(), me);
    }

    #[test]
    fn telemetry_off_leaves_metrics_none() {
        let mut s = Session::builder(FirstFit::new()).build().unwrap();
        s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        s.depart(ItemId(0), rat(1, 1)).unwrap();
        let m = s.metrics();
        assert_eq!(m.vol, None);
        assert_eq!(m.span, None);
        assert_eq!(m.lower_bound(), None);
        assert_eq!(m.mu_estimate(), None);
        assert_eq!(m.ratio_upper_estimate(), None);
    }
}
