//! Zero-cost self-profiling hooks for the engine hot paths.
//!
//! A [`PhaseProbe`] is the profiling counterpart of
//! [`crate::observe::EngineObserver`]: a passive hook the engines
//! call around a **fixed enum of hot-path phases** ([`Phase`]) and
//! feed per-arrival algorithmic work counts ([`ProbeCounter`]).
//! Unlike observers, probes carry no packing semantics — they never
//! see items, bins, or snapshots — so attaching one does **not**
//! force the exact engine: the integer [`crate::tick::TickEngine`]
//! reports the same phases.
//!
//! ## Zero cost when detached
//!
//! Every entry point that accepts a probe is generic over
//! `P: PhaseProbe + ?Sized`; the unattached paths pass the zero-sized
//! [`NoopProbe`], whose empty inline methods monomorphize to nothing
//! (the same discipline as the allocation-free unobserved
//! [`crate::observe::NoopObserver`] path). Work that exists only to
//! feed the probe — e.g. asking the algorithm for its
//! [`probe_sample`](crate::algo::PackingAlgorithm::probe_sample) —
//! is guarded by [`PhaseProbe::is_active`], which `NoopProbe` pins to
//! `false` so the guard and its body constant-fold away. The
//! `profile` arm of the perf snapshot harness measures exactly this
//! contract.
//!
//! ## Phase discipline
//!
//! Phases may nest (an engine phase around a tree-sync phase);
//! [`enter`](PhaseProbe::enter)/[`exit`](PhaseProbe::exit) calls are
//! always balanced and well-bracketed per engine, which is what lets
//! a profiler maintain a folded call stack for flamegraph export.
//! [`event`](PhaseProbe::event) brackets one whole engine event
//! (arrival or departure) and is where sampling profilers decide
//! whether to pay for clock reads on this event.

/// One hot-path phase of an engine event. The set is fixed and small
/// so probes can use flat arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Removing a departing item from the active books (binary search
    /// plus the ordered-vector shifts).
    DepartureDrain = 0,
    /// The algorithm's placement decision for an arrival: the FF/BF/WF
    /// scan or the `FitTree` descent.
    FitScan = 1,
    /// Committing a validated placement into the engine books
    /// (levels, contents, assignment records, open-bin tracking).
    PlacementCommit = 2,
    /// Maintaining the `FitTree`/gap index after a placement,
    /// departure, or bin close.
    TreeSync = 3,
    /// Observer callbacks (`EngineObserver` dispatch).
    ObserverDispatch = 4,
    /// Advancing a bin's usage clock (the level-integral update).
    ClockAdvance = 5,
}

impl Phase {
    /// Number of phases (array dimension for flat probe state).
    pub const COUNT: usize = 6;

    /// Every phase, in `repr` order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::DepartureDrain,
        Phase::FitScan,
        Phase::PlacementCommit,
        Phase::TreeSync,
        Phase::ObserverDispatch,
        Phase::ClockAdvance,
    ];

    /// Stable snake_case name (metric names, folded stacks).
    pub fn name(self) -> &'static str {
        match self {
            Phase::DepartureDrain => "departure_drain",
            Phase::FitScan => "fit_scan",
            Phase::PlacementCommit => "placement_commit",
            Phase::TreeSync => "tree_sync",
            Phase::ObserverDispatch => "observer_dispatch",
            Phase::ClockAdvance => "clock_advance",
        }
    }

    /// Flat index (`repr` value).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Per-arrival algorithmic work counters — the probe-count accounting
/// the paper's scan analysis is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum ProbeCounter {
    /// Open bins examined by a linear Any-Fit scan.
    BinsScanned = 0,
    /// Nodes visited by a `FitTree` descent (best-fit map lookups
    /// count as depth 1).
    TreeDepth = 1,
    /// Euclidean remainder steps spent in `Rational` gcds
    /// (`dbp_numeric::gcd_stats`), attributed per event.
    GcdSteps = 2,
}

impl ProbeCounter {
    /// Number of counters (array dimension for flat probe state).
    pub const COUNT: usize = 3;

    /// Every counter, in `repr` order.
    pub const ALL: [ProbeCounter; ProbeCounter::COUNT] = [
        ProbeCounter::BinsScanned,
        ProbeCounter::TreeDepth,
        ProbeCounter::GcdSteps,
    ];

    /// Stable snake_case name (metric names).
    pub fn name(self) -> &'static str {
        match self {
            ProbeCounter::BinsScanned => "bins_scanned",
            ProbeCounter::TreeDepth => "tree_depth",
            ProbeCounter::GcdSteps => "gcd_steps",
        }
    }

    /// Flat index (`repr` value).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// What kind of engine event a [`PhaseProbe::event`] bracket covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An item arrival (placement decision included).
    Arrival,
    /// An item departure (bin close included, if one happens).
    Departure,
}

/// Passive profiling hook. All methods default to no-ops so a probe
/// implements only what it samples; every call site is generic, so
/// the [`NoopProbe`] instantiation compiles to nothing.
pub trait PhaseProbe: Send {
    /// `true` for real probes. Engines use this to skip work that
    /// exists only to feed the probe (e.g. querying the algorithm's
    /// scan statistics); `NoopProbe` keeps the default `false` so
    /// those branches constant-fold away.
    #[inline]
    fn is_active(&self) -> bool {
        false
    }

    /// An engine event (arrival or departure) is starting. Sampling
    /// profilers decide here whether to time this event's phases.
    #[inline]
    fn event(&mut self, kind: EventKind) {
        let _ = kind;
    }

    /// The phase `phase` begins. Always balanced by [`exit`](Self::exit);
    /// phases nest well-bracketed.
    #[inline]
    fn enter(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// The innermost open phase (`phase`) ends.
    #[inline]
    fn exit(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// `n` units of algorithmic work of kind `counter` were spent on
    /// the current event.
    #[inline]
    fn count(&mut self, counter: ProbeCounter, n: u64) {
        let _ = (counter, n);
    }
}

/// The do-nothing probe behind every unattached entry point.
/// Zero-sized; all methods inherit the empty defaults, so the
/// monomorphized detached path is byte-identical to having no hooks
/// at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl PhaseProbe for NoopProbe {}

// `&mut P` is a probe too: engines take `&mut P` at their entry
// points and re-borrow internally, and sessions store
// `Option<&mut dyn PhaseProbe>`.
impl<P: PhaseProbe + ?Sized> PhaseProbe for &mut P {
    #[inline]
    fn is_active(&self) -> bool {
        (**self).is_active()
    }
    #[inline]
    fn event(&mut self, kind: EventKind) {
        (**self).event(kind);
    }
    #[inline]
    fn enter(&mut self, phase: Phase) {
        (**self).enter(phase);
    }
    #[inline]
    fn exit(&mut self, phase: Phase) {
        (**self).exit(phase);
    }
    #[inline]
    fn count(&mut self, counter: ProbeCounter, n: u64) {
        (**self).count(counter, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the call sequence, for bracketing checks.
    #[derive(Default)]
    pub(crate) struct ScriptProbe {
        pub(crate) log: Vec<String>,
    }

    impl PhaseProbe for ScriptProbe {
        fn is_active(&self) -> bool {
            true
        }
        fn event(&mut self, kind: EventKind) {
            self.log.push(format!("event:{kind:?}"));
        }
        fn enter(&mut self, phase: Phase) {
            self.log.push(format!("+{}", phase.name()));
        }
        fn exit(&mut self, phase: Phase) {
            self.log.push(format!("-{}", phase.name()));
        }
        fn count(&mut self, counter: ProbeCounter, n: u64) {
            self.log.push(format!("#{}={n}", counter.name()));
        }
    }

    #[test]
    fn enums_have_stable_flat_indices() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, c) in ProbeCounter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        assert_eq!(ProbeCounter::ALL.len(), ProbeCounter::COUNT);
    }

    #[test]
    fn names_are_snake_case_and_distinct() {
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn noop_probe_is_inert_and_inactive() {
        let mut p = NoopProbe;
        assert!(!p.is_active());
        p.event(EventKind::Arrival);
        p.enter(Phase::FitScan);
        p.count(ProbeCounter::BinsScanned, 3);
        p.exit(Phase::FitScan);
        // And through a mutable reference (the engine-internal shape).
        let r = &mut p;
        assert!(!r.is_active());
    }

    #[test]
    fn script_probe_sees_calls_through_dyn() {
        let mut s = ScriptProbe::default();
        let d: &mut dyn PhaseProbe = &mut s;
        d.event(EventKind::Departure);
        d.enter(Phase::DepartureDrain);
        d.exit(Phase::DepartureDrain);
        assert_eq!(
            s.log,
            vec!["event:Departure", "+departure_drain", "-departure_drain"]
        );
    }
}
