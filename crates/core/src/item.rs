//! Items and validated problem instances.

use dbp_numeric::{Interval, IntervalSet, Rational};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an item within an [`Instance`] (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The item's index into [`Instance::items`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An item: a job with a resource demand and an activity interval.
///
/// `size` is the fraction of a unit-capacity bin the item occupies
/// (paper: `s(r) ∈ (0, 1]`); `interval` is `I(r) = [arrival,
/// departure)`. The departure is ground truth used by the engine to
/// schedule the departure event and by offline analysis — online
/// algorithms never see it at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Item {
    /// Identifier; equals the item's index in its instance.
    pub id: ItemId,
    /// Resource demand in `(0, 1]` of a unit bin.
    pub size: Rational,
    /// Activity interval `[arrival, departure)`.
    pub interval: Interval,
}

impl Item {
    /// Arrival time `I(r)^-`.
    #[inline]
    pub fn arrival(&self) -> Rational {
        self.interval.lo()
    }

    /// Departure time `I(r)^+`.
    #[inline]
    pub fn departure(&self) -> Rational {
        self.interval.hi()
    }

    /// Duration `|I(r)|`.
    #[inline]
    pub fn duration(&self) -> Rational {
        self.interval.len()
    }

    /// Time–space demand `s(r)·|I(r)|` (paper §III, Proposition 1).
    #[inline]
    pub fn demand(&self) -> Rational {
        self.size * self.duration()
    }

    /// `true` iff the item is active at time `t`.
    #[inline]
    pub fn active_at(&self, t: Rational) -> bool {
        self.interval.contains_point(t)
    }

    /// Small/large classification (paper §V): an item is *small* if
    /// its size is strictly less than `1/2`, *large* otherwise.
    #[inline]
    pub fn is_small(&self) -> bool {
        self.size < Rational::HALF
    }
}

/// Validation failure for [`Instance`] construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// An item's size is outside `(0, 1]`.
    BadSize {
        /// Offending item index.
        item: usize,
        /// The rejected size.
        size: Rational,
    },
    /// An item's interval is empty (`arrival ≥ departure`).
    EmptyInterval {
        /// Offending item index.
        item: usize,
        /// The rejected interval (endpoints ordered for display).
        interval: Interval,
    },
    /// The instance has more than `u32::MAX` items.
    TooManyItems(usize),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::BadSize { item, size } => {
                write!(f, "item {item}: size {size} outside (0, 1]")
            }
            InstanceError::EmptyInterval { item, interval } => {
                write!(f, "item {item}: empty activity interval {interval}")
            }
            InstanceError::TooManyItems(n) => write!(f, "too many items: {n}"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A validated MinUsageTime DBP instance: a finite list of items.
///
/// Invariants enforced at construction:
/// * every size lies in `(0, 1]`;
/// * every interval is non-empty (`arrival < departure`);
/// * `items[i].id == ItemId(i)`.
///
/// Items are stored in the order supplied, which need not be arrival
/// order — the engine sorts events itself, and adversarial
/// constructions care about *tie order at equal arrival times*, which
/// follows the item order here (stable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    items: Vec<Item>,
}

impl Instance {
    /// Validates and builds an instance from `(size, arrival,
    /// departure)` triples.
    pub fn new(specs: Vec<(Rational, Rational, Rational)>) -> Result<Instance, InstanceError> {
        if specs.len() > u32::MAX as usize {
            return Err(InstanceError::TooManyItems(specs.len()));
        }
        let mut items = Vec::with_capacity(specs.len());
        for (i, (size, arrival, departure)) in specs.into_iter().enumerate() {
            if !size.is_positive() || size > Rational::ONE {
                return Err(InstanceError::BadSize { item: i, size });
            }
            if arrival >= departure {
                return Err(InstanceError::EmptyInterval {
                    item: i,
                    interval: if arrival <= departure {
                        Interval::new(arrival, departure)
                    } else {
                        Interval::new(departure, arrival)
                    },
                });
            }
            items.push(Item {
                id: ItemId(i as u32),
                size,
                interval: Interval::new(arrival, departure),
            });
        }
        Ok(Instance { items })
    }

    /// Starts a fluent builder.
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder::default()
    }

    /// The items, indexed by [`ItemId`].
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the instance has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Item lookup by id.
    #[inline]
    pub fn item(&self, id: ItemId) -> &Item {
        &self.items[id.index()]
    }

    /// Total time–space demand `vol(R) = Σ s(r)·|I(r)|`
    /// (lower-bounds `OPT_total`, Proposition 1).
    pub fn vol(&self) -> Rational {
        self.items.iter().map(Item::demand).sum()
    }

    /// The union of the items' activity intervals.
    pub fn active_set(&self) -> IntervalSet {
        IntervalSet::from_intervals(self.items.iter().map(|r| r.interval))
    }

    /// `span(R)` — measure of the union of activity intervals
    /// (lower-bounds `OPT_total`, Proposition 2; Figure 1).
    pub fn span(&self) -> Rational {
        self.active_set().measure()
    }

    /// Max/min duration ratio `µ ≥ 1`; `None` for an empty instance.
    pub fn mu(&self) -> Option<Rational> {
        let max = self.items.iter().map(Item::duration).max()?;
        let min = self.items.iter().map(Item::duration).min()?;
        Some(max / min)
    }

    /// The *packing period* `⋃_r I(r)`'s convex hull — from the first
    /// arrival to the last departure (paper §III.C). `None` if empty.
    pub fn packing_period(&self) -> Option<Interval> {
        self.active_set().hull()
    }

    /// Items active at time `t`, in id order.
    pub fn active_at(&self, t: Rational) -> Vec<ItemId> {
        self.items
            .iter()
            .filter(|r| r.active_at(t))
            .map(|r| r.id)
            .collect()
    }

    /// All distinct event times (arrivals and departures), sorted.
    /// `OPT(R, t)` is piecewise constant between consecutive entries.
    pub fn event_times(&self) -> Vec<Rational> {
        let mut ts: Vec<Rational> = self
            .items
            .iter()
            .flat_map(|r| [r.arrival(), r.departure()])
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// The maximum number of simultaneously active items.
    pub fn max_concurrency(&self) -> usize {
        let mut events: Vec<(Rational, i32)> = Vec::with_capacity(self.items.len() * 2);
        for r in &self.items {
            events.push((r.arrival(), 1));
            events.push((r.departure(), -1));
        }
        // Departures before arrivals at equal times (half-open).
        events.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = 0i64;
        let mut max = 0i64;
        for (_, d) in events {
            cur += d as i64;
            max = max.max(cur);
        }
        max as usize
    }

    /// Returns the instance with all times scaled by `c > 0`.
    ///
    /// MinUsageTime DBP is scale-invariant: costs scale by `c` while
    /// `µ`, competitive ratios and the §IV–§VII certificates are
    /// unchanged (property-tested in `prop_engine.rs`).
    pub fn scaled_time(&self, c: Rational) -> Instance {
        assert!(c.is_positive(), "time scale must be positive");
        Instance {
            items: self
                .items
                .iter()
                .map(|r| Item {
                    id: r.id,
                    size: r.size,
                    interval: Interval::new(r.arrival() * c, r.departure() * c),
                })
                .collect(),
        }
    }

    /// Returns the instance with all times translated by `dt`
    /// (another invariance: absolute time never matters).
    pub fn translated(&self, dt: Rational) -> Instance {
        Instance {
            items: self
                .items
                .iter()
                .map(|r| Item {
                    id: r.id,
                    size: r.size,
                    interval: r.interval.shift(dt),
                })
                .collect(),
        }
    }

    /// Concatenates two instances in time: `other` is translated to
    /// start right after this instance's packing period ends (plus a
    /// `gap`), so the two phases never overlap.
    pub fn then(&self, other: &Instance, gap: Rational) -> Instance {
        let end = self
            .packing_period()
            .map(|p| p.hi())
            .unwrap_or(Rational::ZERO);
        let start = other
            .packing_period()
            .map(|p| p.lo())
            .unwrap_or(Rational::ZERO);
        let shifted = other.translated(end + gap - start);
        let mut specs: Vec<(Rational, Rational, Rational)> = self
            .items
            .iter()
            .map(|r| (r.size, r.arrival(), r.departure()))
            .collect();
        specs.extend(
            shifted
                .items
                .iter()
                .map(|r| (r.size, r.arrival(), r.departure())),
        );
        Instance::new(specs).expect("concatenation preserves validity")
    }

    /// Summary statistics for reports.
    pub fn stats(&self) -> InstanceStats {
        InstanceStats {
            n_items: self.len(),
            vol: self.vol(),
            span: self.span(),
            mu: self.mu(),
            max_concurrency: self.max_concurrency(),
            max_size: self.items.iter().map(|r| r.size).max(),
            min_size: self.items.iter().map(|r| r.size).min(),
        }
    }
}

/// Aggregate facts about an instance (see [`Instance::stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Number of items.
    pub n_items: usize,
    /// Total time–space demand.
    pub vol: Rational,
    /// Span of the activity union.
    pub span: Rational,
    /// Max/min duration ratio (`None` for empty instances).
    pub mu: Option<Rational>,
    /// Peak number of simultaneously active items.
    pub max_concurrency: usize,
    /// Largest item size (`None` for empty instances).
    pub max_size: Option<Rational>,
    /// Smallest item size (`None` for empty instances).
    pub min_size: Option<Rational>,
}

/// Fluent construction of instances (mainly for tests/examples).
#[derive(Debug, Default, Clone)]
pub struct InstanceBuilder {
    specs: Vec<(Rational, Rational, Rational)>,
}

impl InstanceBuilder {
    /// Adds an item with `size`, active on `[arrival, departure)`.
    pub fn item(
        mut self,
        size: Rational,
        arrival: Rational,
        departure: Rational,
    ) -> InstanceBuilder {
        self.specs.push((size, arrival, departure));
        self
    }

    /// Adds an item with `size` arriving at `arrival` and staying for
    /// `duration`.
    pub fn item_for(
        self,
        size: Rational,
        arrival: Rational,
        duration: Rational,
    ) -> InstanceBuilder {
        let dep = arrival + duration;
        self.item(size, arrival, dep)
    }

    /// Validates and builds the instance.
    pub fn build(self) -> Result<Instance, InstanceError> {
        Instance::new(self.specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn demo() -> Instance {
        // Mirrors the paper's Figure 1 shape: r1 on [0,2), r2 on
        // [1,3), r3 on [5,7) — span is 5 (gap [3,5) not counted).
        Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(1, 3), rat(1, 1), rat(3, 1))
            .item(rat(1, 4), rat(5, 1), rat(7, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn validation_rejects_bad_sizes() {
        assert!(matches!(
            Instance::new(vec![(rat(0, 1), rat(0, 1), rat(1, 1))]),
            Err(InstanceError::BadSize { item: 0, .. })
        ));
        assert!(matches!(
            Instance::new(vec![(rat(3, 2), rat(0, 1), rat(1, 1))]),
            Err(InstanceError::BadSize { item: 0, .. })
        ));
        assert!(matches!(
            Instance::new(vec![(rat(-1, 2), rat(0, 1), rat(1, 1))]),
            Err(InstanceError::BadSize { item: 0, .. })
        ));
        // size exactly 1 is allowed
        assert!(Instance::new(vec![(rat(1, 1), rat(0, 1), rat(1, 1))]).is_ok());
    }

    #[test]
    fn validation_rejects_empty_intervals() {
        assert!(matches!(
            Instance::new(vec![(rat(1, 2), rat(1, 1), rat(1, 1))]),
            Err(InstanceError::EmptyInterval { item: 0, .. })
        ));
        assert!(matches!(
            Instance::new(vec![(rat(1, 2), rat(2, 1), rat(1, 1))]),
            Err(InstanceError::EmptyInterval { item: 0, .. })
        ));
    }

    #[test]
    fn ids_are_indices() {
        let inst = demo();
        for (i, r) in inst.items().iter().enumerate() {
            assert_eq!(r.id, ItemId(i as u32));
            assert_eq!(inst.item(r.id), r);
        }
    }

    #[test]
    fn span_ignores_gaps() {
        let inst = demo();
        assert_eq!(inst.span(), rat(5, 1)); // [0,3) ∪ [5,7)
        assert_eq!(
            inst.packing_period(),
            Some(Interval::new(rat(0, 1), rat(7, 1)))
        );
    }

    #[test]
    fn vol_is_sum_of_demands() {
        let inst = demo();
        // 1/2*2 + 1/3*2 + 1/4*2 = 1 + 2/3 + 1/2 = 13/6
        assert_eq!(inst.vol(), rat(13, 6));
    }

    #[test]
    fn mu_is_duration_ratio() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(1, 1)) // duration 1
            .item(rat(1, 2), rat(0, 1), rat(4, 1)) // duration 4
            .build()
            .unwrap();
        assert_eq!(inst.mu(), Some(rat(4, 1)));
        assert_eq!(Instance::new(vec![]).unwrap().mu(), None);
        assert_eq!(demo().mu(), Some(rat(1, 1)));
    }

    #[test]
    fn active_at_respects_half_open() {
        let inst = demo();
        assert_eq!(inst.active_at(rat(0, 1)), vec![ItemId(0)]);
        assert_eq!(inst.active_at(rat(1, 1)), vec![ItemId(0), ItemId(1)]);
        assert_eq!(inst.active_at(rat(2, 1)), vec![ItemId(1)]); // r1 departed
        assert_eq!(inst.active_at(rat(3, 1)), Vec::<ItemId>::new());
        assert_eq!(inst.active_at(rat(5, 1)), vec![ItemId(2)]);
    }

    #[test]
    fn event_times_sorted_dedup() {
        let inst = demo();
        let ts = inst.event_times();
        assert_eq!(
            ts,
            vec![
                rat(0, 1),
                rat(1, 1),
                rat(2, 1),
                rat(3, 1),
                rat(5, 1),
                rat(7, 1)
            ]
        );
    }

    #[test]
    fn max_concurrency_counts_overlap() {
        let inst = demo();
        assert_eq!(inst.max_concurrency(), 2);
        // Back-to-back items never overlap (half-open).
        let seq = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(1, 1), rat(2, 1))
            .build()
            .unwrap();
        assert_eq!(seq.max_concurrency(), 1);
    }

    #[test]
    fn small_large_classification() {
        let inst = Instance::builder()
            .item(rat(1, 4), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(0, 1), rat(1, 1))
            .item(rat(3, 4), rat(0, 1), rat(1, 1))
            .build()
            .unwrap();
        assert!(inst.items()[0].is_small());
        assert!(!inst.items()[1].is_small()); // exactly 1/2 is large
        assert!(!inst.items()[2].is_small());
    }

    #[test]
    fn stats_aggregate() {
        let s = demo().stats();
        assert_eq!(s.n_items, 3);
        assert_eq!(s.vol, rat(13, 6));
        assert_eq!(s.span, rat(5, 1));
        assert_eq!(s.mu, Some(rat(1, 1)));
        assert_eq!(s.max_concurrency, 2);
        assert_eq!(s.max_size, Some(rat(1, 2)));
        assert_eq!(s.min_size, Some(rat(1, 4)));
    }

    #[test]
    fn scaling_and_translation() {
        let inst = demo();
        let scaled = inst.scaled_time(rat(3, 2));
        assert_eq!(scaled.span(), inst.span() * rat(3, 2));
        assert_eq!(scaled.vol(), inst.vol() * rat(3, 2));
        assert_eq!(scaled.mu(), inst.mu());
        let moved = inst.translated(rat(-5, 1));
        assert_eq!(moved.span(), inst.span());
        assert_eq!(moved.vol(), inst.vol());
        assert_eq!(moved.items()[0].arrival(), rat(-5, 1));
    }

    #[test]
    fn concatenation_in_time() {
        let a = demo();
        let b = demo();
        let joined = a.then(&b, rat(1, 1));
        assert_eq!(joined.len(), a.len() + b.len());
        // Phases are disjoint: span adds up.
        assert_eq!(joined.span(), a.span() + b.span());
        assert_eq!(joined.vol(), a.vol() + b.vol());
        // Second phase starts one unit after the first ends (t = 8).
        assert_eq!(joined.items()[3].arrival(), rat(8, 1));
        // Concatenating onto an empty instance is a pure shift.
        let empty = Instance::new(vec![]).unwrap();
        let only_b = empty.then(&b, rat(2, 1));
        assert_eq!(only_b.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "time scale must be positive")]
    fn negative_scale_rejected() {
        let _ = demo().scaled_time(rat(-1, 1));
    }

    #[test]
    fn builder_item_for() {
        let inst = Instance::builder()
            .item_for(rat(1, 2), rat(3, 1), rat(5, 2))
            .build()
            .unwrap();
        assert_eq!(inst.items()[0].departure(), rat(11, 2));
        assert_eq!(inst.items()[0].duration(), rat(5, 2));
    }
}
