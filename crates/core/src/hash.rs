//! Multiply-mix hashing for id-keyed session maps.
//!
//! Item and bin identifiers are single `u32`s minted by the caller or
//! by the engine itself, and the maps keyed by them sit on per-event
//! hot paths (the streaming active set, the tick engine's tree-mode
//! slot lookup, stream telemetry). The default SipHash shows up in
//! per-event profiles, so those maps use this Fibonacci-style
//! multiply mix instead. Not DoS-hardened — fine for engine-internal
//! bookkeeping keyed by ids the engine already trusts.

/// One-shot multiply-mix hasher for single-integer keys.
#[derive(Debug, Clone, Default)]
pub(crate) struct IdHasher(u64);

/// `BuildHasher` for [`IdHasher`]-backed maps.
pub(crate) type BuildIdHasher = std::hash::BuildHasherDefault<IdHasher>;

impl std::hash::Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        // Fibonacci-style multiply, then fold the high bits down so
        // both the bucket index (low bits) and the control byte (high
        // bits) see the mix.
        let h = (self.0 ^ u64::from(n)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn id_map_round_trips() {
        let mut map: HashMap<u32, u64, BuildIdHasher> = HashMap::default();
        for i in 0..10_000u32 {
            map.insert(i, u64::from(i) * 3);
        }
        for i in 0..10_000u32 {
            assert_eq!(map.get(&i), Some(&(u64::from(i) * 3)));
        }
    }
}
