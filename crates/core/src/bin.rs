//! Open-bin state and the read-only view exposed to algorithms.

use crate::item::ItemId;
use dbp_numeric::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a bin. Bins are numbered in the temporal order of
/// their opening (the paper's convention: `U_1^- ≤ U_2^- ≤ …`), and a
/// closed bin is never reused — reopening would be a *new* bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BinId(pub u32);

impl BinId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Snapshot of one *open* bin as visible to an online algorithm.
///
/// Contains only online-legal information: which items are currently
/// inside (ids and sizes), the current level, and when the bin was
/// opened. No departure times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenBin {
    /// Bin identifier (also its opening rank: `BinId(k)` was the
    /// `k`-th bin opened overall).
    pub id: BinId,
    /// Time the bin was opened (first item arrival).
    pub opened_at: Rational,
    /// Current level: total size of the active items inside.
    pub level: Rational,
    /// Currently active items `(id, size)` in arrival order.
    pub contents: Vec<(ItemId, Rational)>,
}

impl OpenBin {
    /// Remaining capacity `1 − level`.
    #[inline]
    pub fn gap(&self) -> Rational {
        Rational::ONE - self.level
    }

    /// `true` iff an item of size `size` fits (`level + size ≤ 1`).
    #[inline]
    pub fn fits(&self, size: Rational) -> bool {
        self.level + size <= Rational::ONE
    }

    /// Number of active items inside.
    #[inline]
    pub fn item_count(&self) -> usize {
        self.contents.len()
    }
}

/// Read-only view of all open bins, ordered by opening time (i.e. by
/// `BinId`). Handed to [`crate::algo::PackingAlgorithm::place`].
#[derive(Debug)]
pub struct BinSnapshot<'a> {
    bins: &'a [OpenBin],
}

impl<'a> BinSnapshot<'a> {
    /// Wraps a slice of open bins (must be sorted by id).
    pub(crate) fn new(bins: &'a [OpenBin]) -> BinSnapshot<'a> {
        debug_assert!(bins.windows(2).all(|w| w[0].id < w[1].id));
        BinSnapshot { bins }
    }

    /// Open bins in opening order (First Fit scans this forwards).
    #[inline]
    pub fn open_bins(&self) -> &[OpenBin] {
        self.bins
    }

    /// Number of open bins.
    #[inline]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `true` iff no bin is open.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Looks up an open bin by id (`None` if that bin is closed or
    /// never existed).
    pub fn get(&self, id: BinId) -> Option<&OpenBin> {
        self.bins
            .binary_search_by(|b| b.id.cmp(&id))
            .ok()
            .map(|i| &self.bins[i])
    }

    /// Iterates over the bins that can accommodate `size`.
    pub fn fitting(&self, size: Rational) -> impl Iterator<Item = &OpenBin> + '_ {
        self.bins.iter().filter(move |b| b.fits(size))
    }

    /// The earliest-opened bin that fits `size` (First Fit's choice).
    pub fn first_fitting(&self, size: Rational) -> Option<&OpenBin> {
        self.fitting(size).next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn bin(id: u32, level: Rational) -> OpenBin {
        OpenBin {
            id: BinId(id),
            opened_at: rat(0, 1),
            level,
            contents: vec![(ItemId(id), level)],
        }
    }

    #[test]
    fn gap_and_fits() {
        let b = bin(0, rat(3, 4));
        assert_eq!(b.gap(), rat(1, 4));
        assert!(b.fits(rat(1, 4))); // exact fit allowed
        assert!(!b.fits(rat(1, 3)));
        assert_eq!(b.item_count(), 1);
    }

    #[test]
    fn snapshot_lookup_and_order() {
        let bins = vec![bin(0, rat(9, 10)), bin(2, rat(1, 2)), bin(5, rat(1, 5))];
        let snap = BinSnapshot::new(&bins);
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
        assert_eq!(snap.get(BinId(2)).unwrap().level, rat(1, 2));
        assert!(snap.get(BinId(1)).is_none());
    }

    #[test]
    fn first_fitting_scans_in_opening_order() {
        let bins = vec![bin(0, rat(9, 10)), bin(2, rat(1, 2)), bin(5, rat(1, 5))];
        let snap = BinSnapshot::new(&bins);
        // size 1/3 does not fit b0 (gap 1/10) but fits b2 first.
        assert_eq!(snap.first_fitting(rat(1, 3)).unwrap().id, BinId(2));
        // size 1/20 fits b0.
        assert_eq!(snap.first_fitting(rat(1, 20)).unwrap().id, BinId(0));
        // nothing fits size 1.
        assert!(snap.first_fitting(rat(1, 1)).is_none());
        assert_eq!(snap.fitting(rat(1, 3)).count(), 2);
    }
}
