//! Passive instrumentation hooks for the packing engine.
//!
//! An [`EngineObserver`] sees every event the engine processes —
//! arrivals, validated placement decisions, bin openings/closings,
//! departures, and run completion — without being able to influence
//! any of them. Observers are how tracing, metrics, and perf
//! snapshots (the `dbp-obs` crate) attach to a run.
//!
//! Every callback has a no-op default body, so an observer implements
//! only what it cares about, and the unobserved entry points
//! ([`crate::engine::run_packing`] etc.) route through the zero-sized
//! [`NoopObserver`] at no allocation cost.
//!
//! Observation points fire at precise moments:
//!
//! * [`on_arrival`](EngineObserver::on_arrival) — before the
//!   algorithm is consulted; the snapshot is the state the algorithm
//!   will see.
//! * [`on_placement`](EngineObserver::on_placement) — after the
//!   decision is **validated** but before it mutates the engine, so
//!   the snapshot is still pre-placement (this is what lets a
//!   recorder reconstruct which bins were scanned and rejected).
//! * [`on_bin_opened`](EngineObserver::on_bin_opened) — right after
//!   the placement callback, when the decision opens a fresh bin.
//! * [`on_departure`](EngineObserver::on_departure) /
//!   [`on_bin_closed`](EngineObserver::on_bin_closed) — after the
//!   engine's books are updated; the closed callback hands over the
//!   bin's complete [`BinRecord`].
//! * [`on_run_finished`](EngineObserver::on_run_finished) — once the
//!   outcome has been assembled.

use crate::algo::ArrivalView;
use crate::bin::{BinId, BinSnapshot};
use crate::engine::{BinRecord, PackingOutcome};
use crate::item::ItemId;
use dbp_numeric::Rational;

/// Read-only instrumentation callbacks, all defaulted to no-ops.
///
/// Invalid events (duplicate arrivals, infeasible placements, …) are
/// *not* observed: the engine reports them as errors before any
/// callback fires, so an observer only ever sees the legal history.
///
/// `Send` is a supertrait for the same reason as on
/// [`crate::algo::PackingAlgorithm`]: an observer attached to a
/// [`crate::session::Session`] travels with it when a sharded fleet
/// dispatches sessions across worker threads.
pub trait EngineObserver: Send {
    /// An arrival is about to be offered to the algorithm. `bins` is
    /// exactly what the algorithm will see.
    fn on_arrival(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) {
        let _ = (arrival, bins);
    }

    /// A placement decision passed validation. `bins` is the
    /// **pre-placement** snapshot; `chosen` is the target bin
    /// (`opened_new` marks it as freshly opened — it is not in `bins`
    /// yet in that case).
    fn on_placement(
        &mut self,
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
    ) {
        let _ = (arrival, bins, chosen, opened_new);
    }

    /// A new bin was opened at `time` (fires after
    /// [`on_placement`](Self::on_placement)).
    fn on_bin_opened(&mut self, bin: BinId, time: Rational) {
        let _ = (bin, time);
    }

    /// `item` (of `size`) departed from `bin` at `time`; `bins` is
    /// the post-departure snapshot (a bin emptied by this departure
    /// is already gone from it).
    fn on_departure(
        &mut self,
        item: ItemId,
        bin: BinId,
        size: Rational,
        time: Rational,
        bins: &BinSnapshot<'_>,
    ) {
        let _ = (item, bin, size, time, bins);
    }

    /// A bin emptied and closed; `record` is its final history.
    fn on_bin_closed(&mut self, record: &BinRecord) {
        let _ = record;
    }

    /// The run completed and `outcome` was assembled.
    fn on_run_finished(&mut self, outcome: &PackingOutcome) {
        let _ = outcome;
    }
}

/// The do-nothing observer behind the unobserved entry points.
///
/// Zero-sized; every callback inherits the empty default body, so the
/// observed code path degenerates to a handful of trivially
/// predictable virtual calls and performs no allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl EngineObserver for NoopObserver {}

/// Broadcasts every callback to a list of observers, in order.
///
/// This is how `pack --events … --metrics …` attaches a trace
/// recorder and a metrics collector to the same run.
pub struct FanOut<'a> {
    observers: Vec<&'a mut dyn EngineObserver>,
}

impl<'a> FanOut<'a> {
    /// Wraps a list of observers.
    pub fn new(observers: Vec<&'a mut dyn EngineObserver>) -> FanOut<'a> {
        FanOut { observers }
    }
}

impl EngineObserver for FanOut<'_> {
    fn on_arrival(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) {
        for o in &mut self.observers {
            o.on_arrival(arrival, bins);
        }
    }

    fn on_placement(
        &mut self,
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
    ) {
        for o in &mut self.observers {
            o.on_placement(arrival, bins, chosen, opened_new);
        }
    }

    fn on_bin_opened(&mut self, bin: BinId, time: Rational) {
        for o in &mut self.observers {
            o.on_bin_opened(bin, time);
        }
    }

    fn on_departure(
        &mut self,
        item: ItemId,
        bin: BinId,
        size: Rational,
        time: Rational,
        bins: &BinSnapshot<'_>,
    ) {
        for o in &mut self.observers {
            o.on_departure(item, bin, size, time, bins);
        }
    }

    fn on_bin_closed(&mut self, record: &BinRecord) {
        for o in &mut self.observers {
            o.on_bin_closed(record);
        }
    }

    fn on_run_finished(&mut self, outcome: &PackingOutcome) {
        for o in &mut self.observers {
            o.on_run_finished(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::FirstFit;
    use crate::item::Instance;
    use crate::session::Runner;
    use dbp_numeric::rat;

    /// Counts callback invocations.
    #[derive(Default)]
    struct Tally {
        arrivals: usize,
        placements: usize,
        opened: usize,
        departures: usize,
        closed: usize,
        finished: usize,
    }

    impl EngineObserver for Tally {
        fn on_arrival(&mut self, _: &ArrivalView, _: &BinSnapshot<'_>) {
            self.arrivals += 1;
        }
        fn on_placement(&mut self, _: &ArrivalView, _: &BinSnapshot<'_>, _: BinId, _: bool) {
            self.placements += 1;
        }
        fn on_bin_opened(&mut self, _: BinId, _: Rational) {
            self.opened += 1;
        }
        fn on_departure(
            &mut self,
            _: ItemId,
            _: BinId,
            _: Rational,
            _: Rational,
            _: &BinSnapshot<'_>,
        ) {
            self.departures += 1;
        }
        fn on_bin_closed(&mut self, _: &BinRecord) {
            self.closed += 1;
        }
        fn on_run_finished(&mut self, _: &PackingOutcome) {
            self.finished += 1;
        }
    }

    fn sample() -> Instance {
        Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(3, 4), rat(0, 1), rat(3, 1))
            .item(rat(1, 4), rat(1, 1), rat(2, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn every_event_is_observed_once() {
        let mut tally = Tally::default();
        let out = Runner::new(&sample())
            .observer(&mut tally)
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(tally.arrivals, 3);
        assert_eq!(tally.placements, 3);
        assert_eq!(tally.departures, 3);
        assert_eq!(tally.opened, out.bins_opened());
        assert_eq!(tally.closed, out.bins_opened());
        assert_eq!(tally.finished, 1);
    }

    #[test]
    fn fan_out_reaches_all_observers() {
        let mut a = Tally::default();
        let mut b = Tally::default();
        {
            let mut fan = FanOut::new(vec![&mut a, &mut b]);
            Runner::new(&sample())
                .observer(&mut fan)
                .run(&mut FirstFit::new())
                .unwrap();
        }
        assert_eq!(a.arrivals, 3);
        assert_eq!(b.arrivals, 3);
        assert_eq!(a.finished, 1);
        assert_eq!(b.finished, 1);
    }

    #[test]
    fn observed_and_unobserved_runs_agree() {
        let plain = crate::session::Runner::new(&sample())
            .run(&mut FirstFit::new())
            .unwrap();
        let observed = Runner::new(&sample())
            .observer(&mut NoopObserver)
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(plain, observed);
    }
}
