#![warn(missing_docs)]

//! # `dbp-core` — MinUsageTime Dynamic Bin Packing
//!
//! Reference implementation of the online bin packing model from
//! *"On First Fit Bin Packing for Online Cloud Server Allocation"*
//! (Tang, Li, Ren, Cai — IPDPS 2016).
//!
//! ## The model (paper §I, §III)
//!
//! Items (jobs) arrive over continuous time. Item `r` has a size
//! `s(r) ∈ (0, 1]` and is *active* on a half-open interval
//! `I(r) = [arrival, departure)`. The departure time is **not known
//! when the item is packed** — algorithms see only arrivals and the
//! current state of the open bins. Bins have unit capacity; the total
//! size of active items in a bin may never exceed 1; items never
//! migrate. A bin is *open* from its first item's arrival until its
//! last active item departs, and the cost of a packing is the total
//! bin usage time `Σ_k |U_k|` — for cloud servers, the accumulated
//! pay-as-you-go renting time.
//!
//! ## What lives where
//!
//! * [`item`] — items, validated instances, instance statistics
//!   (`µ`, time–space demand `vol`, `span`).
//! * [`bin`] — open-bin state and the read-only snapshot handed to
//!   algorithms.
//! * [`engine`] — the event-driven online packing engine; enforces
//!   feasibility, hides departures from the algorithm until they
//!   happen, and produces a complete [`engine::PackingOutcome`].
//! * [`observe`] — passive instrumentation hooks
//!   ([`observe::EngineObserver`]) through which tracing and metrics
//!   (the `dbp-obs` crate) watch a run without influencing it.
//! * [`probe`] — zero-cost self-profiling hooks
//!   ([`probe::PhaseProbe`]): phase-attributed span timing and
//!   per-arrival scan/descent work counts on **both** engines, with
//!   the detached path compiling to nothing.
//! * [`algo`] — the algorithm zoo: **First Fit** (the paper's
//!   subject, Theorem 1: `(µ+4)`-competitive), Best Fit, Worst Fit,
//!   Last Fit, Random Fit (the Any-Fit family, §I), **Next Fit**
//!   (§VIII), and the size-classified **Hybrid First Fit** of
//!   Li–Tang–Cai.
//! * [`tick`] — the compile-then-run pipeline: instances rescaled to
//!   `u64` ticks/units via denominator LCMs and replayed on a pure
//!   integer engine, with bit-identical outcomes and automatic
//!   fallback to the Rational engine on overflow.
//! * [`scan`] — the chunked (autovectorizing) residual-gap sweeps
//!   the tick engine's sub-crossover linear mode runs, with their
//!   per-slot scalar references.
//!
//! * [`session`] — streaming online sessions (incremental ingestion
//!   with live metrics and journal checkpoints) and the unified
//!   batch [`session::Runner`] that replaced the `run_packing*`
//!   free-function family.
//!
//! ## Quick example
//!
//! ```
//! use dbp_core::prelude::*;
//! use dbp_numeric::rat;
//!
//! // Three jobs that all fit together in one unit bin.
//! let instance = Instance::builder()
//!     .item(rat(1, 2), rat(0, 1), rat(2, 1))
//!     .item(rat(1, 4), rat(1, 1), rat(3, 1))
//!     .item(rat(1, 4), rat(0, 1), rat(4, 1))
//!     .build()
//!     .unwrap();
//!
//! let outcome = Runner::new(&instance).run(&mut FirstFit::new()).unwrap();
//! // First Fit packs everything into one bin, open for [0, 4).
//! assert_eq!(outcome.bins().len(), 1);
//! assert_eq!(outcome.total_usage(), rat(4, 1));
//!
//! // The same run, streamed one event at a time:
//! let mut session = Session::builder(FirstFit::new()).build().unwrap();
//! session.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
//! session.arrive(ItemId(2), rat(1, 4), rat(0, 1)).unwrap();
//! session.arrive(ItemId(1), rat(1, 4), rat(1, 1)).unwrap();
//! session.depart(ItemId(0), rat(2, 1)).unwrap();
//! session.depart(ItemId(1), rat(3, 1)).unwrap();
//! session.depart(ItemId(2), rat(4, 1)).unwrap();
//! assert_eq!(session.finish().unwrap(), outcome);
//! ```

pub mod algo;
pub mod bin;
pub mod engine;
pub mod fit_tree;
mod hash;
pub mod item;
pub mod observe;
pub mod probe;
pub mod scan;
pub mod session;
pub mod tick;

pub use algo::{
    AnyFit, BestFit, BestFitFast, DepartureAlignedFit, FirstFit, FirstFitFast, FitPolicy,
    HybridFirstFit, LastFit, MarginalCostFit, NextFit, PackingAlgorithm, Placement, RandomFit,
    Scripted, WorstFit, WorstFitFast,
};
pub use bin::{BinId, BinSnapshot, OpenBin};
pub use engine::{event_schedule, BinRecord, PackingEngine, PackingError, PackingOutcome};
#[allow(deprecated)] // compat re-exports; gone next release
pub use engine::{
    run_packing, run_packing_observed, run_packing_scheduled, run_packing_scheduled_observed,
};
pub use fit_tree::{FitTree, GapKey};
pub use item::{Instance, InstanceBuilder, InstanceError, InstanceStats, Item, ItemId};
pub use observe::{EngineObserver, FanOut, NoopObserver};
pub use probe::{EventKind, NoopProbe, Phase, PhaseProbe, ProbeCounter};
pub use session::{
    Backend, BatchError, Event, Runner, Session, SessionBuilder, SessionError, SessionMetrics,
    SessionSnapshot, TickGrid,
};
#[allow(deprecated)] // compat re-export; gone next release
pub use tick::run_packing_auto;
pub use tick::{
    run_packing_compiled, CompileError, CompiledInstance, TickEngine, TickPolicy, SCAN_CROSSOVER,
};

/// One-stop imports for downstream crates and examples.
pub mod prelude {
    pub use crate::algo::{
        BestFit, BestFitFast, FirstFit, FirstFitFast, HybridFirstFit, LastFit, NextFit,
        PackingAlgorithm, Placement, RandomFit, WorstFit, WorstFitFast,
    };
    pub use crate::bin::{BinId, BinSnapshot, OpenBin};
    pub use crate::engine::{event_schedule, PackingEngine, PackingOutcome};
    #[allow(deprecated)] // compat re-exports; gone next release
    pub use crate::engine::{run_packing, run_packing_observed, run_packing_scheduled};
    pub use crate::item::{Instance, Item, ItemId};
    pub use crate::observe::{EngineObserver, NoopObserver};
    pub use crate::probe::{NoopProbe, Phase, PhaseProbe, ProbeCounter};
    pub use crate::session::{Backend, Event, Runner, Session, SessionError, TickGrid};
    #[allow(deprecated)] // compat re-export; gone next release
    pub use crate::tick::run_packing_auto;
    pub use crate::tick::{CompiledInstance, TickPolicy};
}
