//! Departure-clairvoyant packing (ablation baseline).
//!
//! The defining difficulty of MinUsageTime DBP is that **departure
//! times are unknown at placement time** — it is why no online
//! algorithm can beat ratio `µ`. [`DepartureAlignedFit`] is the
//! ablation of exactly that constraint: it is constructed with the
//! full instance (so it knows every departure) and places each item
//! into the feasible open bin whose current closing time is nearest
//! the item's own departure, aligning lifetimes so bins close
//! promptly instead of being pinned open by one long straggler.
//!
//! It is *not* an online algorithm; it exists so experiments can
//! quantify the value of duration information (`exp_clairvoyance`),
//! the ablation DESIGN.md calls for. Everything else about the
//! engine contract (no migration, feasibility) still applies.

use super::{ArrivalView, PackingAlgorithm, Placement};
use crate::bin::{BinId, BinSnapshot};
use crate::item::{Instance, ItemId};
use dbp_numeric::Rational;
use std::collections::HashMap;

/// Clairvoyant alignment fit: among feasible open bins, find the one
/// minimizing `|bin_close − item_departure|` (`bin_close` = latest
/// departure among the bin's residents), and join it **only if the
/// mismatch is at most half the item's duration** — otherwise open a
/// fresh bin, even though something fits.
///
/// The tolerance is what lets clairvoyance actually pay off: an
/// Any-Fit clairvoyant is still forced into the adversarial gadgets
/// (when only one bin fits, alignment has no choice), whereas the
/// tolerance rule groups items by departure epoch and sends the
/// long-lived stragglers to their own bins. On the universal pair
/// family it recovers the offline non-migratory optimum `k + µ`
/// while every online algorithm pays `kµ`.
#[derive(Debug, Clone)]
pub struct DepartureAlignedFit {
    /// Departure time per item id (the clairvoyance).
    departures: Vec<Rational>,
    /// Latest departure among residents, per open bin.
    bin_close: HashMap<BinId, Rational>,
    /// Residents per open bin (to recompute closings on departure).
    residents: HashMap<BinId, Vec<ItemId>>,
}

impl DepartureAlignedFit {
    /// Builds the clairvoyant from the full instance.
    pub fn new(instance: &Instance) -> DepartureAlignedFit {
        DepartureAlignedFit {
            departures: instance.items().iter().map(|r| r.departure()).collect(),
            bin_close: HashMap::new(),
            residents: HashMap::new(),
        }
    }

    fn departure_of(&self, item: ItemId) -> Rational {
        self.departures[item.index()]
    }
}

impl PackingAlgorithm for DepartureAlignedFit {
    fn name(&self) -> String {
        "DepartureAlignedFit".to_string()
    }

    fn reset(&mut self) {
        self.bin_close.clear();
        self.residents.clear();
    }

    fn place(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement {
        let dep = self.departure_of(arrival.item);
        let duration = dep - arrival.time;
        let mut best: Option<(Rational, BinId)> = None;
        for bin in bins.fitting(arrival.size) {
            let close = self
                .bin_close
                .get(&bin.id)
                .copied()
                .expect("open bin tracked");
            let mismatch = (close - dep).abs();
            match best {
                Some((cur, _)) if cur <= mismatch => {}
                _ => best = Some((mismatch, bin.id)),
            }
        }
        match best {
            // Join only a well-aligned bin: mismatch ≤ duration/2.
            Some((mismatch, bin)) if mismatch * Rational::TWO <= duration => {
                Placement::Existing(bin)
            }
            _ => Placement::OpenNew,
        }
    }

    fn on_placed(&mut self, item: ItemId, bin: BinId, _new_bin: bool, _time: Rational) {
        let dep = self.departure_of(item);
        let close = self.bin_close.entry(bin).or_insert(dep);
        if dep > *close {
            *close = dep;
        }
        self.residents.entry(bin).or_default().push(item);
    }

    fn on_departure(&mut self, item: ItemId, bin: BinId, _time: Rational, _bins: &BinSnapshot<'_>) {
        if let Some(rs) = self.residents.get_mut(&bin) {
            rs.retain(|r| *r != item);
            if let Some(max) = rs.iter().map(|r| self.departures[r.index()]).max() {
                self.bin_close.insert(bin, max);
            }
        }
    }

    fn on_bin_closed(&mut self, bin: BinId, _time: Rational) {
        self.bin_close.remove(&bin);
        self.residents.remove(&bin);
    }
}

/// Clairvoyant greedy: place each item where it adds the least
/// usage time *right now* — joining bin `b` costs
/// `max(0, departure − bin_close(b))` (the extension it forces),
/// opening a new bin costs the item's full duration. Ties prefer the
/// earliest-opened bin.
///
/// Unlike [`DepartureAlignedFit`] this is a pure local-cost rule with
/// no tuning knob; it is myopic (it can be baited into extending a
/// bin that a later item would have extended anyway) but is the
/// natural "obvious greedy" baseline for the clairvoyant setting.
#[derive(Debug, Clone)]
pub struct MarginalCostFit {
    departures: Vec<Rational>,
    bin_close: HashMap<BinId, Rational>,
    residents: HashMap<BinId, Vec<ItemId>>,
}

impl MarginalCostFit {
    /// Builds the greedy from the full instance.
    pub fn new(instance: &Instance) -> MarginalCostFit {
        MarginalCostFit {
            departures: instance.items().iter().map(|r| r.departure()).collect(),
            bin_close: HashMap::new(),
            residents: HashMap::new(),
        }
    }
}

impl PackingAlgorithm for MarginalCostFit {
    fn name(&self) -> String {
        "MarginalCostFit".to_string()
    }

    fn reset(&mut self) {
        self.bin_close.clear();
        self.residents.clear();
    }

    fn place(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement {
        let dep = self.departures[arrival.item.index()];
        let open_cost = dep - arrival.time; // duration
        let mut best: Option<(Rational, BinId)> = None;
        for bin in bins.fitting(arrival.size) {
            let close = self.bin_close[&bin.id];
            let extension = (dep - close).max(Rational::ZERO);
            match best {
                Some((cur, _)) if cur <= extension => {}
                _ => best = Some((extension, bin.id)),
            }
        }
        match best {
            Some((extension, bin)) if extension < open_cost => Placement::Existing(bin),
            _ => Placement::OpenNew,
        }
    }

    fn on_placed(&mut self, item: ItemId, bin: BinId, _new_bin: bool, _time: Rational) {
        let dep = self.departures[item.index()];
        let close = self.bin_close.entry(bin).or_insert(dep);
        if dep > *close {
            *close = dep;
        }
        self.residents.entry(bin).or_default().push(item);
    }

    fn on_departure(&mut self, item: ItemId, bin: BinId, _time: Rational, _bins: &BinSnapshot<'_>) {
        if let Some(rs) = self.residents.get_mut(&bin) {
            rs.retain(|r| *r != item);
            if let Some(max) = rs.iter().map(|r| self.departures[r.index()]).max() {
                self.bin_close.insert(bin, max);
            }
        }
    }

    fn on_bin_closed(&mut self, bin: BinId, _time: Rational) {
        self.bin_close.remove(&bin);
        self.residents.remove(&bin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Runner;
    use crate::FirstFit;
    use dbp_numeric::rat;

    /// The universal pair gadget is precisely where clairvoyance
    /// pays: the aligned fit keeps long tinies out of the short
    /// larges' bins.
    fn pair_gadget(k: i128, mu: i128) -> Instance {
        let mut b = Instance::builder();
        for _ in 0..k {
            b = b
                .item(rat(k - 1, k), rat(0, 1), rat(1, 1)) // large, short
                .item(rat(1, k), rat(0, 1), rat(mu, 1)); // tiny, long
        }
        b.build().unwrap()
    }

    #[test]
    fn clairvoyance_beats_first_fit_on_the_gadget() {
        let inst = pair_gadget(8, 6);
        let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let mut cv = DepartureAlignedFit::new(&inst);
        let aligned = Runner::new(&inst).run(&mut cv).unwrap();
        assert!(
            aligned.total_usage() < ff.total_usage(),
            "aligned {} !< FF {}",
            aligned.total_usage(),
            ff.total_usage()
        );
    }

    #[test]
    fn alignment_groups_equal_departures() {
        // Two shorts (depart at 1) and two longs (depart at 9), all
        // size 1/2 arriving together: alignment pairs short+short and
        // long+long → total usage 1 + 9; FF pairs them by arrival
        // order (short+long twice) → 9 + 9.
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(0, 1), rat(9, 1))
            .item(rat(1, 2), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(0, 1), rat(9, 1))
            .build()
            .unwrap();
        let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(ff.total_usage(), rat(18, 1));
        let mut cv = DepartureAlignedFit::new(&inst);
        let aligned = Runner::new(&inst).run(&mut cv).unwrap();
        assert_eq!(aligned.total_usage(), rat(10, 1));
    }

    #[test]
    fn remains_feasible_and_complete() {
        let inst = Instance::builder()
            .item(rat(2, 3), rat(0, 1), rat(4, 1))
            .item(rat(2, 3), rat(1, 1), rat(2, 1))
            .item(rat(1, 3), rat(1, 1), rat(5, 1))
            .item(rat(1, 2), rat(3, 1), rat(6, 1))
            .build()
            .unwrap();
        let mut cv = DepartureAlignedFit::new(&inst);
        let out = Runner::new(&inst).run(&mut cv).unwrap();
        assert_eq!(out.assignments().len(), 4);
        assert!(out.total_usage() >= inst.span());
    }

    #[test]
    fn marginal_cost_fit_extends_cheaply() {
        // A zero-extension join always beats opening: two items with
        // the SAME departure share; a later-departing item opens its
        // own bin only when extension ≥ duration.
        let inst = Instance::builder()
            .item(rat(1, 4), rat(0, 1), rat(4, 1)) // b0 closes at 4
            .item(rat(1, 4), rat(1, 1), rat(4, 1)) // extension 0 → join
            .item(rat(1, 4), rat(2, 1), rat(12, 1)) // ext 8 ≥ dur 10 → join (8 < 10)
            .build()
            .unwrap();
        let mut mc = MarginalCostFit::new(&inst);
        let out = Runner::new(&inst).run(&mut mc).unwrap();
        assert_eq!(out.bin_of(ItemId(1)), out.bin_of(ItemId(0)));
        // extension 8 < duration 10 → joins too.
        assert_eq!(out.bin_of(ItemId(2)), out.bin_of(ItemId(0)));
        assert_eq!(out.bins_opened(), 1);
    }

    #[test]
    fn marginal_cost_fit_opens_for_expensive_extensions() {
        let inst = Instance::builder()
            .item(rat(1, 4), rat(0, 1), rat(1, 1)) // b0 closes at 1
            .item(rat(1, 4), rat(0, 1), rat(10, 1)) // ext 9 ≥ dur 10? 9 < 10 → joins!
            .item(rat(1, 4), rat(9, 1), rat(10, 1)) // ext 0 → joins the long bin
            .build()
            .unwrap();
        let mut mc = MarginalCostFit::new(&inst);
        let out = Runner::new(&inst).run(&mut mc).unwrap();
        // Item 1: extension 9 < duration 10, joins; bin stays open to 10.
        assert_eq!(out.bins_opened(), 1);
        // Compare a case where opening wins: extension == duration.
        let inst2 = Instance::builder()
            .item(rat(1, 4), rat(0, 1), rat(1, 1))
            .item(rat(1, 4), rat(1, 2), rat(3, 2)) // ext 1/2 < dur 1 → join
            .item(rat(1, 4), rat(1, 1), rat(2, 1)) // ext 1/2... closes 3/2: ext 1/2 < 1 join
            .build()
            .unwrap();
        let mut mc2 = MarginalCostFit::new(&inst2);
        let out2 = Runner::new(&inst2).run(&mut mc2).unwrap();
        assert_eq!(out2.bins_opened(), 1);
    }

    #[test]
    fn tolerance_beats_myopia_on_the_gadget() {
        // The pair gadget separates the two clairvoyant rules: the
        // tolerance-based aligned fit refuses the ill-matched join
        // and recovers ≈ OPT, while the myopic marginal greedy joins
        // each pair bin (extension µ−1 < duration µ, and the bin is
        // then exactly full, removing all later choice) and ends up
        // exactly where First Fit does. Knowing departures is only
        // worth something if the *rule* exploits them non-myopically.
        let inst = pair_gadget(10, 8);
        let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let mut al = DepartureAlignedFit::new(&inst);
        let aligned = Runner::new(&inst).run(&mut al).unwrap();
        let mut mc = MarginalCostFit::new(&inst);
        let marginal = Runner::new(&inst).run(&mut mc).unwrap();
        assert!(aligned.total_usage() < ff.total_usage());
        assert_eq!(marginal.total_usage(), ff.total_usage());
    }

    #[test]
    fn reset_allows_reuse() {
        let inst = pair_gadget(4, 3);
        let mut cv = DepartureAlignedFit::new(&inst);
        let a = Runner::new(&inst).run(&mut cv).unwrap();
        let b = Runner::new(&inst).run(&mut cv).unwrap();
        assert_eq!(a, b);
    }
}
