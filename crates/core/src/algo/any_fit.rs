//! The Any-Fit family: open a new bin only when nothing fits.
//!
//! The family is parameterized by a [`FitPolicy`] choosing among the
//! feasible open bins:
//!
//! | Algorithm | Policy | Paper status |
//! |-----------|--------|--------------|
//! | First Fit | earliest-opened feasible bin | `(µ+4)`-competitive (Theorem 1); ≥ `µ+1` like all Any Fit |
//! | Best Fit  | highest-level feasible bin | competitive ratio **unbounded** for any `µ` (§I) |
//! | Worst Fit | lowest-level feasible bin | Any-Fit lower bound `µ+1` applies |
//! | Last Fit  | latest-opened feasible bin | Any-Fit lower bound `µ+1` applies |
//! | Random Fit| uniform random feasible bin | Any-Fit lower bound `µ+1` applies |

use super::{ArrivalView, PackingAlgorithm, Placement};
use crate::bin::{BinSnapshot, OpenBin};
use crate::probe::ProbeCounter;
use crate::tick::TickPolicy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Selection rule among the open bins that can accommodate the item.
/// (`Send` because [`PackingAlgorithm`] requires it of `AnyFit`.)
pub trait FitPolicy: Send {
    /// Static display name of the resulting algorithm.
    fn policy_name(&self) -> &'static str;

    /// The equivalent integer-engine policy, if one exists (see
    /// [`PackingAlgorithm::tick_policy`]).
    fn tick_policy(&self) -> Option<TickPolicy> {
        None
    }

    /// Picks one bin given the full snapshot `open` and the indices
    /// `feasible` of the bins that can take the item (guaranteed
    /// non-empty, ascending — i.e. in opening order). Borrowing the
    /// candidate list as indices keeps the per-arrival hot path free
    /// of allocation.
    fn select<'a>(
        &mut self,
        arrival: &ArrivalView,
        open: &'a [OpenBin],
        feasible: &[usize],
    ) -> &'a OpenBin;

    /// Re-initializes policy state between runs.
    fn reset_policy(&mut self) {}
}

/// Generic Any-Fit algorithm over a [`FitPolicy`].
#[derive(Debug, Clone)]
pub struct AnyFit<P> {
    policy: P,
    /// Scratch buffer reused across arrivals to avoid per-event
    /// allocation in hot sweeps.
    scratch: Vec<usize>,
    /// Open bins examined by the most recent `place` (probe
    /// accounting; one integer store per arrival).
    last_scanned: u64,
}

impl<P: FitPolicy> AnyFit<P> {
    /// Wraps a policy.
    pub fn with_policy(policy: P) -> AnyFit<P> {
        AnyFit {
            policy,
            scratch: Vec::new(),
            last_scanned: 0,
        }
    }
}

impl<P: FitPolicy> PackingAlgorithm for AnyFit<P> {
    fn name(&self) -> String {
        self.policy.policy_name().to_string()
    }

    fn reset(&mut self) {
        self.policy.reset_policy();
        self.scratch.clear();
        self.last_scanned = 0;
    }

    fn place(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement {
        self.scratch.clear();
        let open = bins.open_bins();
        self.last_scanned = open.len() as u64;
        for (i, b) in open.iter().enumerate() {
            if b.fits(arrival.size) {
                self.scratch.push(i);
            }
        }
        if self.scratch.is_empty() {
            return Placement::OpenNew;
        }
        Placement::Existing(self.policy.select(arrival, open, &self.scratch).id)
    }

    fn tick_policy(&self) -> Option<TickPolicy> {
        self.policy.tick_policy()
    }

    fn probe_sample(&self) -> Option<(ProbeCounter, u64)> {
        Some((ProbeCounter::BinsScanned, self.last_scanned))
    }
}

/// First Fit: the earliest-opened feasible bin (paper §III.B).
#[derive(Debug, Clone, Copy, Default)]
pub struct EarliestOpened;

impl FitPolicy for EarliestOpened {
    fn tick_policy(&self) -> Option<TickPolicy> {
        Some(TickPolicy::FirstFit)
    }
    fn policy_name(&self) -> &'static str {
        "FirstFit"
    }
    fn select<'a>(&mut self, _a: &ArrivalView, open: &'a [OpenBin], c: &[usize]) -> &'a OpenBin {
        &open[c[0]] // candidates come in opening order
    }
}

/// Best Fit: the feasible bin with the highest level (ties: earliest
/// opened).
#[derive(Debug, Clone, Copy, Default)]
pub struct HighestLevel;

impl FitPolicy for HighestLevel {
    fn tick_policy(&self) -> Option<TickPolicy> {
        Some(TickPolicy::BestFit)
    }
    fn policy_name(&self) -> &'static str {
        "BestFit"
    }
    fn select<'a>(&mut self, _a: &ArrivalView, open: &'a [OpenBin], c: &[usize]) -> &'a OpenBin {
        // A stable scan keeps the *first* maximal element.
        let mut best = &open[c[0]];
        for &i in &c[1..] {
            if open[i].level > best.level {
                best = &open[i];
            }
        }
        best
    }
}

/// Worst Fit: the feasible bin with the lowest level (ties: earliest
/// opened).
#[derive(Debug, Clone, Copy, Default)]
pub struct LowestLevel;

impl FitPolicy for LowestLevel {
    fn tick_policy(&self) -> Option<TickPolicy> {
        Some(TickPolicy::WorstFit)
    }
    fn policy_name(&self) -> &'static str {
        "WorstFit"
    }
    fn select<'a>(&mut self, _a: &ArrivalView, open: &'a [OpenBin], c: &[usize]) -> &'a OpenBin {
        let mut worst = &open[c[0]];
        for &i in &c[1..] {
            if open[i].level < worst.level {
                worst = &open[i];
            }
        }
        worst
    }
}

/// Last Fit: the most recently opened feasible bin.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatestOpened;

impl FitPolicy for LatestOpened {
    fn policy_name(&self) -> &'static str {
        "LastFit"
    }
    fn select<'a>(&mut self, _a: &ArrivalView, open: &'a [OpenBin], c: &[usize]) -> &'a OpenBin {
        &open[c[c.len() - 1]]
    }
}

/// Random Fit: a uniformly random feasible bin, reproducible from a
/// stored seed (restored on [`FitPolicy::reset_policy`]).
#[derive(Debug, Clone)]
pub struct RandomChoice {
    seed: u64,
    rng: SmallRng,
}

impl RandomChoice {
    /// Creates the policy from a seed.
    pub fn new(seed: u64) -> RandomChoice {
        RandomChoice {
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl FitPolicy for RandomChoice {
    fn policy_name(&self) -> &'static str {
        "RandomFit"
    }
    fn select<'a>(&mut self, _a: &ArrivalView, open: &'a [OpenBin], c: &[usize]) -> &'a OpenBin {
        &open[c[self.rng.gen_range(0..c.len())]]
    }
    fn reset_policy(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }
}

/// First Fit packing (see [`EarliestOpened`]).
pub type FirstFit = AnyFit<EarliestOpened>;
/// Best Fit packing (see [`HighestLevel`]).
pub type BestFit = AnyFit<HighestLevel>;
/// Worst Fit packing (see [`LowestLevel`]).
pub type WorstFit = AnyFit<LowestLevel>;
/// Last Fit packing (see [`LatestOpened`]).
pub type LastFit = AnyFit<LatestOpened>;
/// Random Fit packing (see [`RandomChoice`]).
pub type RandomFit = AnyFit<RandomChoice>;

impl FirstFit {
    /// Creates First Fit.
    pub fn new() -> FirstFit {
        AnyFit::with_policy(EarliestOpened)
    }
}

impl Default for FirstFit {
    fn default() -> Self {
        FirstFit::new()
    }
}

impl BestFit {
    /// Creates Best Fit.
    pub fn new() -> BestFit {
        AnyFit::with_policy(HighestLevel)
    }
}

impl Default for BestFit {
    fn default() -> Self {
        BestFit::new()
    }
}

impl WorstFit {
    /// Creates Worst Fit.
    pub fn new() -> WorstFit {
        AnyFit::with_policy(LowestLevel)
    }
}

impl Default for WorstFit {
    fn default() -> Self {
        WorstFit::new()
    }
}

impl LastFit {
    /// Creates Last Fit.
    pub fn new() -> LastFit {
        AnyFit::with_policy(LatestOpened)
    }
}

impl Default for LastFit {
    fn default() -> Self {
        LastFit::new()
    }
}

impl RandomFit {
    /// Creates Random Fit with the given seed.
    pub fn seeded(seed: u64) -> RandomFit {
        AnyFit::with_policy(RandomChoice::new(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Instance, ItemId};
    use crate::session::Runner;
    use crate::BinId;
    use dbp_numeric::rat;

    /// A scenario where a bin closes mid-run: all policies must skip
    /// the closed bin.
    fn steady() -> Instance {
        Instance::builder()
            .item(rat(7, 10), rat(0, 1), rat(10, 1)) // b0: 0.7
            .item(rat(2, 5), rat(0, 1), rat(10, 1)) // b1: 0.4 (0.7+0.4 > 1)
            .item(rat(9, 10), rat(0, 1), rat(1, 1)) // b2: 0.9, departs at 1
            .item(rat(1, 2), rat(2, 1), rat(10, 1)) // probe, size 0.5
            .build()
            .unwrap()
    }

    #[test]
    fn first_fit_takes_earliest() {
        // At t=2: b0=0.7, b1=0.4 (b2 closed at t=1). Probe 0.5 fits only b1.
        let out = Runner::new(&steady()).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bin_of(ItemId(3)), Some(BinId(1)));
    }

    #[test]
    fn exact_fill_is_allowed() {
        // 0.3 + 0.7 == 1.0: capacity is inclusive.
        let inst = Instance::builder()
            .item(rat(3, 10), rat(0, 1), rat(10, 1))
            .item(rat(7, 10), rat(0, 1), rat(10, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 1);
        assert_eq!(out.bins()[0].peak_level, rat(1, 1));
    }

    #[test]
    fn policy_unit_selection() {
        // Test policies directly on synthetic candidate slices —
        // no engine noise.
        use crate::bin::OpenBin;
        let mk = |id: u32, level: dbp_numeric::Rational| OpenBin {
            id: BinId(id),
            opened_at: rat(0, 1),
            level,
            contents: vec![],
        };
        let open = vec![mk(0, rat(3, 10)), mk(1, rat(3, 5)), mk(2, rat(1, 10))];
        let cands = vec![0, 1, 2];
        let arr = ArrivalView {
            item: ItemId(9),
            size: rat(3, 10),
            time: rat(0, 1),
        };
        assert_eq!(EarliestOpened.select(&arr, &open, &cands).id, BinId(0));
        assert_eq!(HighestLevel.select(&arr, &open, &cands).id, BinId(1));
        assert_eq!(LowestLevel.select(&arr, &open, &cands).id, BinId(2));
        assert_eq!(LatestOpened.select(&arr, &open, &cands).id, BinId(2));
        // Ties: first (earliest) wins for BF/WF.
        let tied_open = vec![mk(1, rat(3, 5)), mk(3, rat(3, 5))];
        let tied = vec![0, 1];
        assert_eq!(HighestLevel.select(&arr, &tied_open, &tied).id, BinId(1));
        assert_eq!(LowestLevel.select(&arr, &tied_open, &tied).id, BinId(1));
    }

    #[test]
    fn random_fit_is_reproducible_across_resets() {
        let inst = Instance::builder()
            .item(rat(1, 4), rat(0, 1), rat(10, 1))
            .item(rat(1, 4), rat(0, 1), rat(10, 1))
            .item(rat(2, 3), rat(1, 1), rat(10, 1))
            .item(rat(1, 4), rat(2, 1), rat(10, 1))
            .item(rat(1, 4), rat(3, 1), rat(10, 1))
            .item(rat(1, 4), rat(4, 1), rat(10, 1))
            .build()
            .unwrap();
        let mut rf = RandomFit::seeded(42);
        let a = Runner::new(&inst).run(&mut rf).unwrap();
        let b = Runner::new(&inst).run(&mut rf).unwrap(); // reset() restores the seed
        assert_eq!(a.assignments(), b.assignments());
        // A different seed may choose differently but must stay valid.
        let c = Runner::new(&inst).run(&mut RandomFit::seeded(1)).unwrap();
        assert_eq!(c.assignments().len(), 6);
    }

    #[test]
    fn any_fit_never_opens_when_something_fits() {
        // Fundamental Any-Fit property (§I): greedy non-opening.
        let inst = Instance::builder()
            .item(rat(1, 3), rat(0, 1), rat(10, 1))
            .item(rat(1, 3), rat(1, 1), rat(10, 1))
            .item(rat(1, 3), rat(2, 1), rat(10, 1))
            .build()
            .unwrap();
        for out in [
            Runner::new(&inst).run(&mut FirstFit::new()).unwrap(),
            Runner::new(&inst).run(&mut BestFit::new()).unwrap(),
            Runner::new(&inst).run(&mut WorstFit::new()).unwrap(),
            Runner::new(&inst).run(&mut LastFit::new()).unwrap(),
            Runner::new(&inst).run(&mut RandomFit::seeded(3)).unwrap(),
        ] {
            assert_eq!(
                out.bins_opened(),
                1,
                "{} opened extra bins",
                out.algorithm()
            );
        }
    }
}
