//! Hybrid (size-classified) First Fit.
//!
//! The paper's introduction recalls the Hybrid First Fit algorithm of
//! Li, Tang & Cai (SPAA'14 / TPDS'16), which "classifies and packs
//! items based on their sizes" and achieves a competitive ratio of
//! roughly `(8/7)µ + O(1)` — better than plain First Fit's `µ + 4`
//! slope-wise, at the price of being **semi-online**: the size
//! classes are fixed in advance (and the sharpest variants also need
//! `µ` a priori).
//!
//! The IPDPS'16 paper does not restate the exact classification, so
//! this implementation is the documented reconstruction (DESIGN.md
//! §3): items are classified by size against a fixed breakpoint
//! ladder, and each class is packed by First Fit **into its own
//! disjoint pool of bins**. The classic instantiation uses the single
//! breakpoint `1/2` (the paper's small/large threshold, §V); finer
//! ladders such as `[1/4, 1/2]` trade more simultaneous bins for
//! higher per-class packing density.

use super::{ArrivalView, PackingAlgorithm, Placement};
use crate::bin::{BinId, BinSnapshot};
use crate::item::ItemId;
use dbp_numeric::Rational;
use std::collections::HashMap;

/// Size-classified First Fit over disjoint per-class bin pools.
#[derive(Debug, Clone)]
pub struct HybridFirstFit {
    /// Ascending size breakpoints. An item of size `s` belongs to
    /// class `#{b ∈ breakpoints : b < s}` (so with `[1/2]`, sizes
    /// `< 1/2`... precisely: `s ≤ 1/2` → class 0, `s > 1/2` → class 1).
    breakpoints: Vec<Rational>,
    /// Which class each *open* bin belongs to.
    bin_class: HashMap<BinId, usize>,
    /// Class the last `place` decision was for (to label a new bin in
    /// `on_placed`).
    pending_class: Option<usize>,
}

impl HybridFirstFit {
    /// Builds a classifier from ascending breakpoints.
    ///
    /// # Panics
    /// Panics if the breakpoints are not strictly ascending or lie
    /// outside `(0, 1)`.
    pub fn with_breakpoints(breakpoints: Vec<Rational>) -> HybridFirstFit {
        assert!(
            breakpoints.windows(2).all(|w| w[0] < w[1]),
            "breakpoints must be strictly ascending"
        );
        assert!(
            breakpoints
                .iter()
                .all(|b| b.is_positive() && *b < Rational::ONE),
            "breakpoints must lie in (0, 1)"
        );
        HybridFirstFit {
            breakpoints,
            bin_class: HashMap::new(),
            pending_class: None,
        }
    }

    /// The classic two-class variant with breakpoint `1/2`:
    /// small items (`s ≤ 1/2`) and large items (`s > 1/2`) are packed
    /// into disjoint bin pools.
    pub fn classic() -> HybridFirstFit {
        HybridFirstFit::with_breakpoints(vec![Rational::HALF])
    }

    /// The Harmonic ladder with `k ≥ 2` classes: breakpoints
    /// `1/k < 1/(k−1) < … < 1/2`, i.e. class `i` holds sizes in
    /// `(1/(i+2), 1/(i+1)]` with a final class for `s > 1/2` — the
    /// classification of Lee & Lee's classic Harmonic algorithm,
    /// applied per-class with First Fit.
    pub fn harmonic(k: u32) -> HybridFirstFit {
        assert!(k >= 2, "harmonic ladder needs k ≥ 2");
        let breakpoints = (2..=k as i128).rev().map(|i| Rational::new(1, i)).collect();
        HybridFirstFit::with_breakpoints(breakpoints)
    }

    /// Number of classes (`breakpoints.len() + 1`).
    pub fn classes(&self) -> usize {
        self.breakpoints.len() + 1
    }

    /// The class an item of size `s` belongs to.
    pub fn class_of(&self, size: Rational) -> usize {
        self.breakpoints.partition_point(|b| *b < size)
    }
}

impl PackingAlgorithm for HybridFirstFit {
    fn name(&self) -> String {
        let bps: Vec<String> = self.breakpoints.iter().map(|b| b.to_string()).collect();
        format!("HybridFirstFit[{}]", bps.join(","))
    }

    fn reset(&mut self) {
        self.bin_class.clear();
        self.pending_class = None;
    }

    fn place(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement {
        let class = self.class_of(arrival.size);
        self.pending_class = Some(class);
        for bin in bins.open_bins() {
            if self.bin_class.get(&bin.id) == Some(&class) && bin.fits(arrival.size) {
                return Placement::Existing(bin.id);
            }
        }
        Placement::OpenNew
    }

    fn on_placed(&mut self, _item: ItemId, bin: BinId, new_bin: bool, _time: Rational) {
        if new_bin {
            let class = self
                .pending_class
                .expect("on_placed must follow a place() call");
            self.bin_class.insert(bin, class);
        }
        self.pending_class = None;
    }

    fn on_bin_closed(&mut self, bin: BinId, _time: Rational) {
        self.bin_class.remove(&bin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Instance;
    use crate::session::Runner;
    use crate::{BinId, ItemId};
    use dbp_numeric::rat;

    #[test]
    fn classification_against_breakpoints() {
        let hff = HybridFirstFit::with_breakpoints(vec![rat(1, 4), rat(1, 2)]);
        assert_eq!(hff.classes(), 3);
        assert_eq!(hff.class_of(rat(1, 8)), 0);
        assert_eq!(hff.class_of(rat(1, 4)), 0); // boundary: ≤ breakpoint
        assert_eq!(hff.class_of(rat(1, 3)), 1);
        assert_eq!(hff.class_of(rat(1, 2)), 1);
        assert_eq!(hff.class_of(rat(3, 4)), 2);
        assert_eq!(hff.class_of(rat(1, 1)), 2);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_breakpoints_rejected() {
        let _ = HybridFirstFit::with_breakpoints(vec![rat(1, 2), rat(1, 4)]);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn out_of_range_breakpoints_rejected() {
        let _ = HybridFirstFit::with_breakpoints(vec![rat(1, 1)]);
    }

    #[test]
    fn harmonic_ladder_classifies_by_reciprocals() {
        let h = HybridFirstFit::harmonic(4); // breakpoints 1/4 < 1/3 < 1/2
        assert_eq!(h.classes(), 4);
        assert_eq!(h.class_of(rat(1, 5)), 0); // ≤ 1/4
        assert_eq!(h.class_of(rat(1, 4)), 0);
        assert_eq!(h.class_of(rat(3, 10)), 1); // (1/4, 1/3]
        assert_eq!(h.class_of(rat(2, 5)), 2); // (1/3, 1/2]
        assert_eq!(h.class_of(rat(3, 4)), 3); // > 1/2
        assert!(h.name().contains("1/4,1/3,1/2"));
    }

    #[test]
    fn classes_get_disjoint_pools() {
        // One small (0.3) and one large (0.6) item could share a bin
        // under plain FF, but HFF separates them.
        let inst = Instance::builder()
            .item(rat(3, 10), rat(0, 1), rat(2, 1))
            .item(rat(3, 5), rat(0, 1), rat(2, 1))
            .build()
            .unwrap();
        let ff = Runner::new(&inst).run(&mut crate::FirstFit::new()).unwrap();
        assert_eq!(ff.bins_opened(), 1);
        let hff = Runner::new(&inst)
            .run(&mut HybridFirstFit::classic())
            .unwrap();
        assert_eq!(hff.bins_opened(), 2);
        assert_ne!(
            hff.bin_of(ItemId(0)).unwrap(),
            hff.bin_of(ItemId(1)).unwrap()
        );
    }

    #[test]
    fn within_class_behaves_like_first_fit() {
        // Four small items pack greedily into the small-class pool.
        let inst = Instance::builder()
            .item(rat(2, 5), rat(0, 1), rat(4, 1))
            .item(rat(2, 5), rat(1, 1), rat(4, 1))
            .item(rat(2, 5), rat(2, 1), rat(4, 1)) // doesn't fit pool bin 0
            .item(rat(1, 5), rat(3, 1), rat(4, 1)) // fits pool bin 0 again
            .build()
            .unwrap();
        let out = Runner::new(&inst)
            .run(&mut HybridFirstFit::classic())
            .unwrap();
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.bin_of(ItemId(0)), Some(BinId(0)));
        assert_eq!(out.bin_of(ItemId(1)), Some(BinId(0)));
        assert_eq!(out.bin_of(ItemId(2)), Some(BinId(1)));
        assert_eq!(out.bin_of(ItemId(3)), Some(BinId(0)));
    }

    #[test]
    fn closed_bins_leave_the_pool() {
        let inst = Instance::builder()
            .item(rat(2, 5), rat(0, 1), rat(1, 1)) // small pool bin b0, closes at 1
            .item(rat(2, 5), rat(2, 1), rat(3, 1)) // must open b1
            .build()
            .unwrap();
        let mut hff = HybridFirstFit::classic();
        let out = Runner::new(&inst).run(&mut hff).unwrap();
        assert_eq!(out.bins_opened(), 2);
        // Internal map drained by close notifications.
        assert!(hff.bin_class.is_empty());
    }

    #[test]
    fn reset_clears_pools() {
        let inst = Instance::builder()
            .item(rat(3, 5), rat(0, 1), rat(1, 1))
            .build()
            .unwrap();
        let mut hff = HybridFirstFit::classic();
        let _ = Runner::new(&inst).run(&mut hff).unwrap();
        let again = Runner::new(&inst).run(&mut hff).unwrap();
        assert_eq!(again.bins_opened(), 1);
    }
}
