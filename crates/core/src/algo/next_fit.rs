//! Next Fit packing (paper §VIII).
//!
//! Next Fit keeps **exactly one bin available** for receiving new
//! items. If an incoming item does not fit in the available bin, the
//! available bin is marked *unavailable forever* and a new bin is
//! opened (becoming the available one). Unavailable bins close when
//! their items depart, but never receive items again.
//!
//! The paper shows (§VIII) that Next Fit's competitive ratio for
//! MinUsageTime DBP is at least `µ` — the `n`-pair construction
//! (implemented in `dbp-workloads::adversarial::next_fit_family`)
//! drives the ratio arbitrarily close to it — while Kamali &
//! López-Ortiz give a `2µ + 1` upper bound. The multiplicative
//! factor `µ` is therefore *inevitable* for Next Fit, whereas First
//! Fit achieves factor exactly 1 (Theorem 1): this is the paper's
//! closing comparison.

use super::{ArrivalView, PackingAlgorithm, Placement};
use crate::bin::{BinId, BinSnapshot};
use crate::item::ItemId;
use dbp_numeric::Rational;

/// Next Fit: a single available bin; unavailable bins never receive
/// items again.
#[derive(Debug, Clone, Default)]
pub struct NextFit {
    /// The currently available bin, if one is open.
    available: Option<BinId>,
}

impl NextFit {
    /// Creates Next Fit.
    pub fn new() -> NextFit {
        NextFit::default()
    }

    /// The bin currently marked available (for tests/diagnostics).
    pub fn available_bin(&self) -> Option<BinId> {
        self.available
    }
}

impl PackingAlgorithm for NextFit {
    fn name(&self) -> String {
        "NextFit".to_string()
    }

    fn reset(&mut self) {
        self.available = None;
    }

    fn place(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement {
        if let Some(avail) = self.available {
            if let Some(bin) = bins.get(avail) {
                if bin.fits(arrival.size) {
                    return Placement::Existing(avail);
                }
            }
            // Either the available bin cannot take the item (it
            // becomes unavailable forever) or it already closed.
            self.available = None;
        }
        Placement::OpenNew
    }

    fn on_placed(&mut self, _item: ItemId, bin: BinId, new_bin: bool, _time: Rational) {
        if new_bin {
            self.available = Some(bin);
        }
    }

    fn on_bin_closed(&mut self, bin: BinId, _time: Rational) {
        if self.available == Some(bin) {
            self.available = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Instance;
    use crate::session::Runner;
    use dbp_numeric::rat;

    #[test]
    fn keeps_filling_available_bin() {
        let inst = Instance::builder()
            .item(rat(1, 4), rat(0, 1), rat(10, 1))
            .item(rat(1, 4), rat(1, 1), rat(10, 1))
            .item(rat(1, 4), rat(2, 1), rat(10, 1))
            .item(rat(1, 4), rat(3, 1), rat(10, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 1);
    }

    #[test]
    fn unavailable_bins_never_receive_items() {
        // b0 gets 0.5; 0.6 doesn't fit → b0 unavailable, b1 opens.
        // Item 0 then departs leaving b0 at level 0 — wait, a bin
        // closes when empty, so craft b0 to keep a small resident.
        let inst = Instance::builder()
            .item(rat(1, 10), rat(0, 1), rat(10, 1)) // resident of b0
            .item(rat(2, 5), rat(0, 1), rat(2, 1)) // joins b0: level 1/2
            .item(rat(3, 5), rat(1, 1), rat(10, 1)) // doesn't fit b0 → b1
            .item(rat(1, 5), rat(3, 1), rat(10, 1)) // b0 has room (0.1) but is
            // unavailable; must go to the available b1 (level 3/5 → 4/5).
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.bin_of(crate::ItemId(3)), Some(crate::BinId(1)));
        // First Fit, by contrast, reuses b0.
        let ff = Runner::new(&inst).run(&mut crate::FirstFit::new()).unwrap();
        assert_eq!(ff.bin_of(crate::ItemId(3)), Some(crate::BinId(0)));
    }

    #[test]
    fn closed_available_bin_is_replaced() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(1, 1)) // b0 opens, closes at t=1
            .item(rat(1, 2), rat(2, 1), rat(3, 1)) // must open b1
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.total_usage(), rat(2, 1));
    }

    #[test]
    fn paper_section8_pair_gadget_small_case() {
        // §VIII with n=3, µ=2: pairs (1/2, 1/n) arriving in sequence
        // at t=0; size-1/2 items depart at 1, size-1/n at µ.
        // Next Fit puts each pair in its own bin (the next 1/2 does
        // not fit on top of 1/2 + 1/3), so 3 bins open until t=2.
        let n = 3;
        let mu = rat(2, 1);
        let mut b = Instance::builder();
        for _ in 0..n {
            b = b
                .item(rat(1, 2), rat(0, 1), rat(1, 1))
                .item(rat(1, 3), rat(0, 1), mu);
        }
        let inst = b.build().unwrap();
        let out = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 3);
        assert_eq!(out.total_usage(), rat(6, 1)); // n·µ = 3·2
    }

    #[test]
    fn reset_clears_available() {
        let mut nf = NextFit::new();
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(1, 1))
            .build()
            .unwrap();
        let _ = Runner::new(&inst).run(&mut nf).unwrap();
        assert_eq!(nf.available_bin(), None); // closed at end of run
        let _ = Runner::new(&inst).run(&mut nf).unwrap(); // reset + rerun ok
    }
}
