//! Online packing algorithms.
//!
//! The paper analyzes the *Any Fit* family — algorithms that open a
//! new bin **only when no open bin can accommodate the incoming
//! item** (§I) — with **First Fit** as the star: Theorem 1 shows FF
//! is `(µ+4)`-competitive for MinUsageTime DBP. §VIII contrasts it
//! with **Next Fit**, which keeps a single *available* bin and is
//! inherently `≥ µ`-competitive by the pair construction.
//!
//! All algorithms here are *online*: [`PackingAlgorithm::place`]
//! receives only the arriving item's size and a snapshot of the
//! currently open bins. Departure times are invisible until the
//! departure happens.

mod any_fit;
mod clairvoyant;
mod fast_fit;
mod hybrid;
mod next_fit;
mod scripted;

pub use any_fit::{
    AnyFit, BestFit, EarliestOpened, FirstFit, FitPolicy, HighestLevel, LastFit, LatestOpened,
    LowestLevel, RandomChoice, RandomFit, WorstFit,
};
pub use clairvoyant::{DepartureAlignedFit, MarginalCostFit};
pub use fast_fit::{
    BestFitFast, EarliestFeasible, FirstFitFast, RoomiestFeasible, TightestFeasible, TreeFit,
    TreeRule, WorstFitFast,
};
pub use hybrid::HybridFirstFit;
pub use next_fit::NextFit;
pub use scripted::Scripted;

use crate::bin::{BinId, BinSnapshot};
use crate::item::ItemId;
use crate::probe::ProbeCounter;
use crate::tick::TickPolicy;
use dbp_numeric::Rational;

/// What an algorithm sees when an item arrives: size and time, never
/// the departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalView {
    /// The arriving item's identifier.
    pub item: ItemId,
    /// The arriving item's size.
    pub size: Rational,
    /// Current time.
    pub time: Rational,
}

/// An algorithm's placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Put the item into an already-open bin.
    Existing(BinId),
    /// Open a fresh bin for the item.
    OpenNew,
}

/// An online MinUsageTime DBP packing algorithm.
///
/// Implementations must be deterministic given their own state (the
/// randomized [`RandomFit`] derives all randomness from a stored
/// seed, restored by [`reset`](Self::reset)).
///
/// `Send` is a supertrait: algorithms are plain owned data, and the
/// bound is what lets a [`crate::session::Session`] holding one be
/// dispatched across the worker threads of a sharded fleet.
pub trait PackingAlgorithm: Send {
    /// Human-readable name (appears in reports and outcomes).
    fn name(&self) -> String;

    /// Clears all run state. Called by the engine before a replay so
    /// one algorithm value can be reused across runs.
    fn reset(&mut self) {}

    /// Decides where the arriving item goes. The engine validates
    /// the decision and aborts the run on an infeasible placement —
    /// a correct implementation never returns one.
    fn place(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement;

    /// Notification that the engine committed a placement.
    /// `new_bin` is `true` when the placement opened `bin`. This is
    /// how stateful algorithms (Next Fit, Hybrid First Fit) learn the
    /// id of a freshly opened bin.
    fn on_placed(&mut self, _item: ItemId, _bin: BinId, _new_bin: bool, _time: Rational) {}

    /// Notification of an item departure; `bins` is the state
    /// *after* removal (and after the bin closed, if it did).
    fn on_departure(
        &mut self,
        _item: ItemId,
        _bin: BinId,
        _time: Rational,
        _bins: &BinSnapshot<'_>,
    ) {
    }

    /// Notification that a bin emptied and closed.
    fn on_bin_closed(&mut self, _bin: BinId, _time: Rational) {}

    /// The integer-engine policy this algorithm is equivalent to, if
    /// any. First/Best/Worst Fit (linear and tree-backed alike)
    /// return their [`TickPolicy`]; everything else returns `None`
    /// and always runs on the exact Rational engine. Backend
    /// selection in [`crate::session::Runner`] and
    /// [`crate::session::Session`] keys off this — never off the
    /// algorithm's name.
    fn tick_policy(&self) -> Option<TickPolicy> {
        None
    }

    /// Algorithmic work spent on the **most recent**
    /// [`place`](Self::place) decision, as a probe counter sample —
    /// bins examined for linear scanners, tree descent depth for
    /// index-backed ones. `None` (the default) for algorithms that
    /// do not account their scans. Queried by the engine only when a
    /// profiling probe is attached ([`crate::probe::PhaseProbe`]), so
    /// implementations may keep the bookkeeping unconditionally cheap
    /// (a single stored integer).
    fn probe_sample(&self) -> Option<(ProbeCounter, u64)> {
        None
    }
}

// A mutable reference is itself a packing algorithm: this is what
// lets the unified `Runner` drive a caller-owned algorithm through a
// `Session` (which stores its algorithm boxed) without taking
// ownership.
impl<T: PackingAlgorithm + ?Sized> PackingAlgorithm for &mut T {
    fn name(&self) -> String {
        (**self).name()
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn place(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement {
        (**self).place(arrival, bins)
    }
    fn on_placed(&mut self, item: ItemId, bin: BinId, new_bin: bool, time: Rational) {
        (**self).on_placed(item, bin, new_bin, time);
    }
    fn on_departure(&mut self, item: ItemId, bin: BinId, time: Rational, bins: &BinSnapshot<'_>) {
        (**self).on_departure(item, bin, time, bins);
    }
    fn on_bin_closed(&mut self, bin: BinId, time: Rational) {
        (**self).on_bin_closed(bin, time);
    }
    fn tick_policy(&self) -> Option<TickPolicy> {
        (**self).tick_policy()
    }
    fn probe_sample(&self) -> Option<(ProbeCounter, u64)> {
        (**self).probe_sample()
    }
}

// A boxed algorithm is one too: `algo::by_name` hands out
// `Box<dyn PackingAlgorithm>`, which `Session::resume` feeds straight
// back into the builder.
impl<T: PackingAlgorithm + ?Sized> PackingAlgorithm for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn place(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement {
        (**self).place(arrival, bins)
    }
    fn on_placed(&mut self, item: ItemId, bin: BinId, new_bin: bool, time: Rational) {
        (**self).on_placed(item, bin, new_bin, time);
    }
    fn on_departure(&mut self, item: ItemId, bin: BinId, time: Rational, bins: &BinSnapshot<'_>) {
        (**self).on_departure(item, bin, time, bins);
    }
    fn on_bin_closed(&mut self, bin: BinId, time: Rational) {
        (**self).on_bin_closed(bin, time);
    }
    fn tick_policy(&self) -> Option<TickPolicy> {
        (**self).tick_policy()
    }
    fn probe_sample(&self) -> Option<(ProbeCounter, u64)> {
        (**self).probe_sample()
    }
}

/// Constructs a zoo algorithm from its canonical
/// [`name`](PackingAlgorithm::name), or `None` for names that are
/// unknown or not reconstructible from the name alone (`RandomFit`
/// needs its seed, `Scripted` its script, the clairvoyant algorithms
/// their instance). This is how [`crate::session::Session::resume`]
/// rebuilds the algorithm recorded in a checkpoint.
pub fn by_name(name: &str) -> Option<Box<dyn PackingAlgorithm>> {
    Some(match name {
        "FirstFit" => Box::new(FirstFit::new()),
        "BestFit" => Box::new(BestFit::new()),
        "WorstFit" => Box::new(WorstFit::new()),
        "LastFit" => Box::new(LastFit::new()),
        "FirstFitFast" => Box::new(FirstFitFast::new()),
        "BestFitFast" => Box::new(BestFitFast::new()),
        "WorstFitFast" => Box::new(WorstFitFast::new()),
        "NextFit" => Box::new(NextFit::new()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Instance;
    use crate::session::Runner;
    use dbp_numeric::rat;

    /// The shared scenario: bins end up at distinct levels so each
    /// policy makes a distinguishable choice.
    ///
    /// Arrivals at t=0: a=0.6, b=0.5, c=0.3  →  FF: a+c in b0? Let's
    /// trace FF: a(0.6)→b0; b(0.5) doesn't fit b0 → b1; c(0.3) fits
    /// b0 (0.9) → b0. Levels: b0=0.9, b1=0.5.
    /// At t=1, d=0.4 arrives: fits only b1 for FF.
    fn scenario() -> Instance {
        Instance::builder()
            .item(rat(3, 5), rat(0, 1), rat(2, 1)) // a
            .item(rat(1, 2), rat(0, 1), rat(2, 1)) // b
            .item(rat(3, 10), rat(0, 1), rat(2, 1)) // c
            .item(rat(2, 5), rat(1, 1), rat(2, 1)) // d
            .build()
            .unwrap()
    }

    #[test]
    fn algorithms_produce_valid_distinct_packings() {
        let inst = scenario();
        let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let bf = Runner::new(&inst).run(&mut BestFit::new()).unwrap();
        let wf = Runner::new(&inst).run(&mut WorstFit::new()).unwrap();
        let nf = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
        // All pack 4 items.
        for out in [&ff, &bf, &wf, &nf] {
            assert_eq!(out.assignments().len(), 4);
        }
        // FF and BF agree here (c to the fuller b0); WF sends c to b1.
        assert_eq!(ff.bin_of(ItemId(2)), Some(BinId(0)));
        assert_eq!(bf.bin_of(ItemId(2)), Some(BinId(0)));
        assert_eq!(wf.bin_of(ItemId(2)), Some(BinId(1)));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FirstFit::new().name(), "FirstFit");
        assert_eq!(BestFit::new().name(), "BestFit");
        assert_eq!(WorstFit::new().name(), "WorstFit");
        assert_eq!(LastFit::new().name(), "LastFit");
        assert_eq!(NextFit::new().name(), "NextFit");
        assert_eq!(RandomFit::seeded(7).name(), "RandomFit");
        assert!(HybridFirstFit::classic()
            .name()
            .starts_with("HybridFirstFit"));
    }
}
