//! Scripted (replay) placements.
//!
//! [`Scripted`] places each item into a predetermined *bin label*;
//! labels are mapped to engine bins in order of first use. This is
//! not an online algorithm — it exists so tests, figures and worked
//! examples can realize an exact packing (e.g. the consolidation
//! scenarios of §V) and feed it to the analysis machinery, with the
//! engine still enforcing feasibility.

use super::{ArrivalView, PackingAlgorithm, Placement};
use crate::bin::{BinId, BinSnapshot};
use crate::item::ItemId;
use dbp_numeric::Rational;
use std::collections::HashMap;

/// Places item `i` into the bin labeled `labels[i]`.
#[derive(Debug, Clone)]
pub struct Scripted {
    labels: Vec<u32>,
    open_by_label: HashMap<u32, BinId>,
}

impl Scripted {
    /// Builds the script; `labels[i]` is item `i`'s bin label.
    pub fn new(labels: Vec<u32>) -> Scripted {
        Scripted {
            labels,
            open_by_label: HashMap::new(),
        }
    }

    /// Builds a script from `(item index, label)` pairs over `n`
    /// items; unlisted items get label 0.
    pub fn from_pairs(n: usize, pairs: &[(usize, u32)]) -> Scripted {
        let mut labels = vec![0; n];
        for &(i, l) in pairs {
            labels[i] = l;
        }
        Scripted::new(labels)
    }
}

impl PackingAlgorithm for Scripted {
    fn name(&self) -> String {
        "Scripted".to_string()
    }

    fn reset(&mut self) {
        self.open_by_label.clear();
    }

    fn place(&mut self, arrival: &ArrivalView, _bins: &BinSnapshot<'_>) -> Placement {
        let label = self.labels[arrival.item.index()];
        match self.open_by_label.get(&label) {
            Some(&bin) => Placement::Existing(bin),
            None => Placement::OpenNew,
        }
    }

    fn on_placed(&mut self, item: ItemId, bin: BinId, new_bin: bool, _time: Rational) {
        if new_bin {
            self.open_by_label.insert(self.labels[item.index()], bin);
        }
    }

    fn on_bin_closed(&mut self, bin: BinId, _time: Rational) {
        self.open_by_label.retain(|_, b| *b != bin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Instance;
    use crate::session::Runner;
    use dbp_numeric::rat;

    #[test]
    fn follows_the_script() {
        let inst = Instance::builder()
            .item(rat(1, 4), rat(0, 1), rat(2, 1))
            .item(rat(1, 4), rat(0, 1), rat(2, 1))
            .item(rat(1, 4), rat(0, 1), rat(2, 1))
            .build()
            .unwrap();
        // First Fit would use one bin; the script demands two.
        let out = Runner::new(&inst)
            .run(&mut Scripted::new(vec![0, 1, 0]))
            .unwrap();
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.bin_of(ItemId(0)), out.bin_of(ItemId(2)));
        assert_ne!(out.bin_of(ItemId(0)), out.bin_of(ItemId(1)));
    }

    #[test]
    fn closed_labels_reopen_fresh_bins() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(2, 1), rat(3, 1)) // label 0 again, after close
            .build()
            .unwrap();
        let out = Runner::new(&inst)
            .run(&mut Scripted::new(vec![0, 0]))
            .unwrap();
        assert_eq!(out.bins_opened(), 2);
    }

    #[test]
    fn infeasible_scripts_are_rejected_by_the_engine() {
        let inst = Instance::builder()
            .item(rat(2, 3), rat(0, 1), rat(2, 1))
            .item(rat(2, 3), rat(0, 1), rat(2, 1))
            .build()
            .unwrap();
        let err = Runner::new(&inst)
            .run(&mut Scripted::new(vec![0, 0]))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::SessionError::Packing(crate::PackingError::Infeasible { .. })
        ));
    }

    #[test]
    fn from_pairs_defaults_to_zero() {
        let s = Scripted::from_pairs(4, &[(2, 7)]);
        assert_eq!(s.labels, vec![0, 0, 7, 0]);
    }
}
