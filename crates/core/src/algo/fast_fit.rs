//! Tree-backed Any-Fit algorithms: `O(log B)` placement decisions.
//!
//! [`FirstFitFast`], [`BestFitFast`] and [`WorstFitFast`] are drop-in
//! replacements for the linear-scan [`FirstFit`](super::FirstFit) /
//! [`BestFit`](super::BestFit) / [`WorstFit`](super::WorstFit): same
//! [`PackingAlgorithm`] trait, **bit-identical placement decisions**
//! (asserted by the `prop_fast_fit` property suite), but each arrival
//! costs one [`FitTree`] descent instead of a scan over every open
//! bin.
//!
//! The tree is kept in sync with the engine purely through the
//! algorithm callbacks — [`on_placed`](PackingAlgorithm::on_placed)
//! charges the placed size against the chosen bin (or registers the
//! fresh bin), [`on_departure`](PackingAlgorithm::on_departure) reads
//! the bin's post-departure level from the snapshot, and
//! [`on_bin_closed`](PackingAlgorithm::on_bin_closed) tombstones the
//! leaf. No engine internals are touched, so these run against any
//! driver of the `PackingAlgorithm` trait. Like the other stateful
//! algorithms (Next Fit, Hybrid First Fit), one value must not be
//! shared across interleaved engines; `reset` restores pristine
//! state.

use super::{ArrivalView, PackingAlgorithm, Placement};
use crate::bin::{BinId, BinSnapshot};
use crate::fit_tree::FitTree;
use crate::item::ItemId;
use crate::probe::ProbeCounter;
use crate::tick::TickPolicy;
use dbp_numeric::Rational;
use std::marker::PhantomData;

/// Which `FitTree` query a [`TreeFit`] instance runs per arrival.
/// (`Send` because [`PackingAlgorithm`] requires it of `TreeFit`.)
pub trait TreeRule: Send {
    /// Static display name of the resulting algorithm.
    const NAME: &'static str;
    /// The equivalent integer-engine policy (see
    /// [`PackingAlgorithm::tick_policy`]).
    const TICK: TickPolicy;
    /// Selects a feasible bin for `size` (or `None` to open) plus the
    /// number of tree nodes the query visited (probe accounting).
    fn query_counted(tree: &FitTree, size: Rational) -> (Option<BinId>, u32);

    /// Selects a feasible bin for `size`, or `None` to open.
    fn query(tree: &FitTree, size: Rational) -> Option<BinId> {
        Self::query_counted(tree, size).0
    }
}

/// First Fit rule: earliest-opened feasible bin.
#[derive(Debug, Clone, Copy, Default)]
pub struct EarliestFeasible;

impl TreeRule for EarliestFeasible {
    const TICK: TickPolicy = TickPolicy::FirstFit;
    const NAME: &'static str = "FirstFitFast";
    fn query_counted(tree: &FitTree, size: Rational) -> (Option<BinId>, u32) {
        tree.first_fit_counted(size)
    }
}

/// Best Fit rule: highest-level feasible bin, ties earliest-opened.
#[derive(Debug, Clone, Copy, Default)]
pub struct TightestFeasible;

impl TreeRule for TightestFeasible {
    const TICK: TickPolicy = TickPolicy::BestFit;
    const NAME: &'static str = "BestFitFast";
    fn query_counted(tree: &FitTree, size: Rational) -> (Option<BinId>, u32) {
        tree.best_fit_counted(size)
    }
}

/// Worst Fit rule: lowest-level feasible bin, ties earliest-opened.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoomiestFeasible;

impl TreeRule for RoomiestFeasible {
    const TICK: TickPolicy = TickPolicy::WorstFit;
    const NAME: &'static str = "WorstFitFast";
    fn query_counted(tree: &FitTree, size: Rational) -> (Option<BinId>, u32) {
        tree.worst_fit_counted(size)
    }
}

/// Generic tree-backed Any-Fit algorithm over a [`TreeRule`].
#[derive(Debug, Clone, Default)]
pub struct TreeFit<R: TreeRule> {
    tree: FitTree,
    /// Size of the arrival whose placement decision is in flight
    /// (set by `place`, consumed by `on_placed`).
    pending: Option<Rational>,
    /// Tree nodes visited by the most recent `place` query (probe
    /// accounting; one integer store per arrival).
    last_depth: u64,
    _rule: PhantomData<R>,
}

impl<R: TreeRule> TreeFit<R> {
    /// Creates the algorithm with an empty index.
    pub fn new() -> TreeFit<R> {
        TreeFit {
            tree: FitTree::new(),
            pending: None,
            last_depth: 0,
            _rule: PhantomData,
        }
    }

    /// Read access to the underlying index (diagnostics/tests).
    pub fn tree(&self) -> &FitTree {
        &self.tree
    }
}

impl<R: TreeRule> PackingAlgorithm for TreeFit<R> {
    fn name(&self) -> String {
        R::NAME.to_string()
    }

    fn reset(&mut self) {
        self.tree.clear();
        self.pending = None;
        self.last_depth = 0;
    }

    fn place(&mut self, arrival: &ArrivalView, _bins: &BinSnapshot<'_>) -> Placement {
        self.pending = Some(arrival.size);
        let (hit, depth) = R::query_counted(&self.tree, arrival.size);
        self.last_depth = depth as u64;
        match hit {
            Some(bin) => Placement::Existing(bin),
            None => Placement::OpenNew,
        }
    }

    fn on_placed(&mut self, _item: ItemId, bin: BinId, new_bin: bool, _time: Rational) {
        let size = self
            .pending
            .take()
            .expect("on_placed must follow a place() call");
        if new_bin {
            self.tree.open(bin, Rational::ONE - size);
        } else {
            self.tree.place(bin, size);
        }
    }

    fn on_departure(&mut self, _item: ItemId, bin: BinId, _time: Rational, bins: &BinSnapshot<'_>) {
        // The snapshot is post-removal: if the bin is still open its
        // new level is authoritative; if it closed, `on_bin_closed`
        // fires next and tombstones the leaf.
        if let Some(b) = bins.get(bin) {
            self.tree.set_gap(bin, Rational::ONE - b.level);
        }
    }

    fn on_bin_closed(&mut self, bin: BinId, _time: Rational) {
        self.tree.close(bin);
    }

    fn tick_policy(&self) -> Option<TickPolicy> {
        Some(R::TICK)
    }

    fn probe_sample(&self) -> Option<(ProbeCounter, u64)> {
        Some((ProbeCounter::TreeDepth, self.last_depth))
    }
}

/// Tree-backed First Fit (see [`EarliestFeasible`]).
pub type FirstFitFast = TreeFit<EarliestFeasible>;
/// Tree-backed Best Fit (see [`TightestFeasible`]).
pub type BestFitFast = TreeFit<TightestFeasible>;
/// Tree-backed Worst Fit (see [`RoomiestFeasible`]).
pub type WorstFitFast = TreeFit<RoomiestFeasible>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{BestFit, FirstFit, WorstFit};
    use crate::item::Instance;
    use crate::session::Runner;
    use dbp_numeric::rat;

    /// A churny scenario: mid-run closures, exact fills, equal-time
    /// departure/arrival boundaries.
    fn scenario() -> Instance {
        Instance::builder()
            .item(rat(7, 10), rat(0, 1), rat(10, 1))
            .item(rat(2, 5), rat(0, 1), rat(6, 1))
            .item(rat(9, 10), rat(0, 1), rat(1, 1)) // closes its bin at t=1
            .item(rat(1, 2), rat(1, 1), rat(10, 1)) // arrives as that closes
            .item(rat(3, 10), rat(2, 1), rat(10, 1)) // exact fill of b0
            .item(rat(3, 5), rat(6, 1), rat(10, 1)) // arrives at a departure instant
            .build()
            .unwrap()
    }

    #[test]
    fn fast_first_fit_matches_reference() {
        let inst = scenario();
        let fast = Runner::new(&inst).run(&mut FirstFitFast::new()).unwrap();
        let slow = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(fast.assignments(), slow.assignments());
        assert_eq!(fast.bins(), slow.bins());
        assert_eq!(fast.total_usage(), slow.total_usage());
        assert_eq!(fast.algorithm(), "FirstFitFast");
    }

    #[test]
    fn fast_best_and_worst_match_reference() {
        let inst = scenario();
        let bf_fast = Runner::new(&inst).run(&mut BestFitFast::new()).unwrap();
        let bf = Runner::new(&inst).run(&mut BestFit::new()).unwrap();
        assert_eq!(bf_fast.assignments(), bf.assignments());
        let wf_fast = Runner::new(&inst).run(&mut WorstFitFast::new()).unwrap();
        let wf = Runner::new(&inst).run(&mut WorstFit::new()).unwrap();
        assert_eq!(wf_fast.assignments(), wf.assignments());
    }

    #[test]
    fn reuse_across_runs_via_reset() {
        let inst = scenario();
        let mut ff = FirstFitFast::new();
        let a = Runner::new(&inst).run(&mut ff).unwrap();
        let b = Runner::new(&inst).run(&mut ff).unwrap(); // reset() clears the tree
        assert_eq!(a, b);
        assert!(ff.tree().is_empty()); // everything departed and closed
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FirstFitFast::new().name(), "FirstFitFast");
        assert_eq!(BestFitFast::new().name(), "BestFitFast");
        assert_eq!(WorstFitFast::new().name(), "WorstFitFast");
    }
}
