//! Tick compilation: integer-arithmetic replay of exact instances.
//!
//! The Rational engine ([`crate::engine`]) keeps every book — bin
//! levels, level integrals, usage periods — in exact `i128`
//! fractions, paying gcd reductions on the hot path. Exactness does
//! not require fractions at *runtime*: every concrete instance lies
//! on a finite grid, namely the LCM of its timestamp denominators
//! (for time) and of its size denominators (for size). Rescaling once
//! onto that grid turns the whole replay into `u64`/`u128` machine
//! arithmetic, and the final results convert back to the very same
//! reduced `Rational`s the exact engine would have produced:
//!
//! * **times** become ticks `(t − t₀)·T` where `T` is the time LCM
//!   and `t₀` the earliest arrival (subtracting `t₀` keeps negative
//!   timestamps representable in unsigned ticks);
//! * **sizes** become units `s·S` where `S` is the size LCM; the unit
//!   bin capacity becomes the integer `S`;
//! * **level integrals** accumulate as `Σ units·Δticks` in `u128` and
//!   convert back as the exact fraction over `T·S`.
//!
//! Because the rescaling map is strictly monotone, every comparison
//! an Any-Fit policy makes (feasibility `gap ≥ s`, Best-Fit minima,
//! Worst-Fit maxima, tie-breaks on bin id) has the same answer in
//! tick space as in rational space — so [`TickEngine`] produces
//! **bit-identical** [`PackingOutcome`]s, which the `prop_tick`
//! property suite asserts against both the linear-scan references and
//! the `*Fast` tree algorithms.
//!
//! The engine itself is data-oriented (see `DESIGN.md`, "Hot path
//! anatomy"): live bin state lives in a slot-recycled
//! structure-of-arrays `BinStore`, placement queries below the scan
//! crossover sweep a dense gap array through the vectorized
//! [`crate::scan`] kernels, the active set is an `O(1)` slot map
//! (dense for compiled replays, hashed for streaming sessions), and
//! [`CompiledInstance::run`] applies the pre-sorted schedule in
//! equal-`(tick, class)` **bursts** — one clock check and one
//! bookkeeping flush per burst instead of per event.
//!
//! Compilation is checked end to end: if either LCM, any scaled
//! quantity, or the tick horizon leaves the supported range (scales
//! and horizon each capped at `u32::MAX`, which bounds every interim
//! product below `u128`/`i128` limits), [`CompiledInstance::compile`]
//! reports [`CompileError`] and [`run_packing_auto`] falls back to
//! the exact Rational engine — same outcome, slower path.

use crate::algo::PackingAlgorithm;
use crate::bin::BinId;
use crate::engine::{BinRecord, PackingError, PackingOutcome};
use crate::fit_tree::FitTree;
use crate::hash::BuildIdHasher;
use crate::item::{Instance, ItemId};
use crate::probe::{EventKind, NoopProbe, Phase, PhaseProbe, ProbeCounter};
use crate::scan;
use dbp_numeric::{checked_lcm, gcd128, Interval, Rational};
use dbp_simcore::EventClass;
use std::collections::HashMap;

/// Hard cap on both LCM scales and the tick horizon. Keeping each
/// factor below `2³²` bounds every product the engine forms:
/// per-bin integrals by `capacity·horizon < 2⁶⁴` (fits `u128` and,
/// converted, `i128`), and the conversion denominator `T·S < 2⁶⁴`.
const MAX_SCALE: i128 = u32::MAX as i128;

/// Open-bin count above which a [`TickEngine`] switches its placement
/// scan from the chunked linear sweep ([`crate::scan`]) to the
/// [`FitTree`] index. Re-measured against the vectorized sweep
/// (forced-linear vs forced-tree staircase replays, all three
/// policies): First Fit's chunked sweep only breaks even with the
/// tree near `B ≈ 2048`, Best/Worst Fit — which always scan the full
/// slice — near `B ≈ 512`. The shared constant sits at the BF/WF
/// boundary so no policy regresses while FF keeps a ~1.5× win at
/// `B = 512` (sweep table in `DESIGN.md`, "Hot path anatomy";
/// per-slot-scan era value was 64).
pub const SCAN_CROSSOVER: usize = 512;

/// Vacant-slot / vacant-entry sentinel for bin ids. Bin ids are
/// opening ranks bounded by the item count, which the instance
/// validation caps well below `u32::MAX`.
const VACANT: u32 = u32::MAX;

/// Why an instance could not be rescaled to tick space. Every variant
/// routes [`run_packing_auto`] to the Rational fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The LCM of timestamp denominators exceeds [`u32::MAX`].
    TimeScaleOverflow,
    /// The LCM of size denominators exceeds [`u32::MAX`].
    SizeScaleOverflow,
    /// A scaled timestamp exceeds the `u32::MAX` tick horizon.
    TickOverflow,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::TimeScaleOverflow => write!(f, "time-denominator LCM out of range"),
            CompileError::SizeScaleOverflow => write!(f, "size-denominator LCM out of range"),
            CompileError::TickOverflow => write!(f, "scaled timestamp beyond the tick horizon"),
        }
    }
}

impl std::error::Error for CompileError {}

/// An item rescaled to integer ticks and size units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickItem {
    /// Size in units of `1/S` (always in `1..=capacity`).
    pub size: u64,
    /// Arrival tick, offset from the compile origin.
    pub arrival: u64,
    /// Departure tick (strictly greater than `arrival`).
    pub departure: u64,
}

/// One pre-sorted replay event of a compiled instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickEvent {
    /// Firing tick.
    pub tick: u64,
    /// Departures before arrivals at equal ticks (half-open
    /// intervals), exactly as in the Rational replay.
    pub class: EventClass,
    /// The item arriving or departing.
    pub item: ItemId,
}

/// Which Any-Fit selection rule a [`TickEngine`] runs per arrival.
///
/// Names are the canonical algorithm names, so a tick outcome is
/// literally identical — algorithm string included — to the
/// corresponding linear-scan reference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickPolicy {
    /// Earliest-opened feasible bin.
    FirstFit,
    /// Highest-level (tightest) feasible bin, ties earliest-opened.
    BestFit,
    /// Lowest-level (roomiest) feasible bin, ties earliest-opened.
    WorstFit,
}

impl TickPolicy {
    /// Canonical algorithm name reported in the outcome.
    pub fn name(self) -> &'static str {
        match self {
            TickPolicy::FirstFit => "FirstFit",
            TickPolicy::BestFit => "BestFit",
            TickPolicy::WorstFit => "WorstFit",
        }
    }

    /// The tree-backed Rational algorithm used on the fallback path.
    fn fast_algo(self) -> Box<dyn PackingAlgorithm> {
        match self {
            TickPolicy::FirstFit => Box::new(crate::algo::FirstFitFast::new()),
            TickPolicy::BestFit => Box::new(crate::algo::BestFitFast::new()),
            TickPolicy::WorstFit => Box::new(crate::algo::WorstFitFast::new()),
        }
    }

    /// The linear-scan Rational algorithm equivalent to this policy.
    /// Unlike the `*Fast` variants these are stateless, so they make
    /// correct decisions from *any* engine state — which is what the
    /// tick-to-exact promotion of a streaming session needs.
    pub(crate) fn linear_algo(self) -> Box<dyn PackingAlgorithm> {
        match self {
            TickPolicy::FirstFit => Box::new(crate::algo::FirstFit::new()),
            TickPolicy::BestFit => Box::new(crate::algo::BestFit::new()),
            TickPolicy::WorstFit => Box::new(crate::algo::WorstFit::new()),
        }
    }
}

/// An instance rescaled onto its integer grid, with a pre-sorted
/// replay schedule. Built once, replayed per algorithm.
#[derive(Debug, Clone)]
pub struct CompiledInstance {
    origin: Rational,
    time_scale: i128,
    size_scale: i128,
    capacity: u64,
    items: Vec<TickItem>,
    schedule: Vec<TickEvent>,
}

impl CompiledInstance {
    /// Rescales `instance` to tick space, or reports why it does not
    /// fit the supported integer range.
    pub fn compile(instance: &Instance) -> Result<CompiledInstance, CompileError> {
        let origin = instance
            .items()
            .iter()
            .map(|it| it.arrival())
            .min()
            .unwrap_or(Rational::ZERO);
        let mut time_scale: i128 = origin.denom();
        let mut size_scale: i128 = 1;
        for item in instance.items() {
            time_scale = checked_lcm(time_scale, item.arrival().denom())
                .filter(|&l| l <= MAX_SCALE)
                .ok_or(CompileError::TimeScaleOverflow)?;
            time_scale = checked_lcm(time_scale, item.departure().denom())
                .filter(|&l| l <= MAX_SCALE)
                .ok_or(CompileError::TimeScaleOverflow)?;
            size_scale = checked_lcm(size_scale, item.size.denom())
                .filter(|&l| l <= MAX_SCALE)
                .ok_or(CompileError::SizeScaleOverflow)?;
        }
        let mut items = Vec::with_capacity(instance.len());
        let mut entries = Vec::with_capacity(instance.len() * 2);
        for item in instance.items() {
            let arrival = (item.arrival() - origin)
                .scaled_to(time_scale)
                .filter(|&t| (0..=MAX_SCALE).contains(&t))
                .ok_or(CompileError::TickOverflow)?;
            let departure = (item.departure() - origin)
                .scaled_to(time_scale)
                .filter(|&t| (0..=MAX_SCALE).contains(&t))
                .ok_or(CompileError::TickOverflow)?;
            let size = item
                .size
                .scaled_to(size_scale)
                .expect("size denominator divides the size LCM");
            debug_assert!(size >= 1 && size <= size_scale, "validated size in (0,1]");
            items.push(TickItem {
                size: size as u64,
                arrival: arrival as u64,
                departure: departure as u64,
            });
            entries.push(TickEvent {
                tick: arrival as u64,
                class: EventClass::Arrival,
                item: item.id,
            });
            entries.push(TickEvent {
                tick: departure as u64,
                class: EventClass::Departure,
                item: item.id,
            });
        }
        // Stable sort: full `(tick, class)` ties keep insertion (item)
        // order — the same total order the seq-numbered heap produces.
        entries.sort_by_key(|e| (e.tick, e.class));
        Ok(CompiledInstance {
            origin,
            time_scale,
            size_scale,
            capacity: size_scale as u64,
            items,
            schedule: entries,
        })
    }

    /// The timestamp subtracted before scaling (earliest arrival).
    pub fn origin(&self) -> Rational {
        self.origin
    }

    /// Ticks per time unit (`T`, the timestamp-denominator LCM).
    pub fn time_scale(&self) -> i128 {
        self.time_scale
    }

    /// Units per bin capacity (`S`, the size-denominator LCM).
    pub fn size_scale(&self) -> i128 {
        self.size_scale
    }

    /// The integer bin capacity (`== size_scale`).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The rescaled items, indexed by [`ItemId`].
    pub fn items(&self) -> &[TickItem] {
        &self.items
    }

    /// The pre-sorted replay schedule (two events per item).
    pub fn schedule(&self) -> &[TickEvent] {
        &self.schedule
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the instance has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Replays the schedule through a [`TickEngine`] under `policy`.
    /// The schedule is borrowed, never rebuilt: a sweep calls this
    /// once per algorithm on one compiled instance.
    pub fn run(&self, policy: TickPolicy) -> Result<PackingOutcome, PackingError> {
        self.run_probed(policy, &mut NoopProbe)
    }

    /// [`run`](Self::run) with a profiling probe bracketing every
    /// event's phases (see [`PhaseProbe`]). The detached
    /// ([`NoopProbe`]) instantiation is what [`run`](Self::run)
    /// monomorphizes to, at zero cost.
    pub fn run_probed<P: PhaseProbe + ?Sized>(
        &self,
        policy: TickPolicy,
        probe: &mut P,
    ) -> Result<PackingOutcome, PackingError> {
        self.replay(TickEngine::new(self, policy), policy, probe)
    }

    /// Test-only: [`run`](Self::run) with an explicit scan-crossover
    /// override, so property tests can exercise the linear→tree
    /// promotion (including mid-burst) on small instances without
    /// building [`SCAN_CROSSOVER`]-sized ones.
    #[doc(hidden)]
    pub fn run_with_crossover(
        &self,
        policy: TickPolicy,
        crossover: usize,
    ) -> Result<PackingOutcome, PackingError> {
        let mut engine = TickEngine::new(self, policy);
        engine.set_scan_crossover(crossover);
        self.replay(engine, policy, &mut NoopProbe)
    }

    /// Burst-batched replay: the schedule is pre-sorted by
    /// `(tick, class)`, so equal-tick runs of one class are
    /// contiguous and can be applied with one clock check and one
    /// deferred bookkeeping flush per run instead of per event.
    /// Outcome- and error-identical to per-event application (the
    /// `prop_tick` suite pins both).
    fn replay<P: PhaseProbe + ?Sized>(
        &self,
        mut engine: TickEngine,
        policy: TickPolicy,
        probe: &mut P,
    ) -> Result<PackingOutcome, PackingError> {
        let schedule = &self.schedule;
        let mut i = 0;
        while i < schedule.len() {
            let TickEvent { tick, class, .. } = schedule[i];
            let mut j = i + 1;
            while j < schedule.len() && schedule[j].tick == tick && schedule[j].class == class {
                j += 1;
            }
            match class {
                EventClass::Arrival => {
                    engine.arrive_burst(probe, &schedule[i..j], &self.items, tick)?;
                }
                EventClass::Departure => {
                    engine.depart_burst(probe, &schedule[i..j], tick)?;
                }
                EventClass::Control => {}
            }
            i = j;
        }
        engine.finish(policy.name())
    }
}

/// Structure-of-arrays store of live bin state, indexed by *slot*.
///
/// Slots are recycled through a free list when bins close, so every
/// array is bounded by the **peak** number of simultaneously open
/// bins — a long-running streaming session no longer accretes a hole
/// per closed bin the way the old `Vec<Option<TickLive>>` did. Bin
/// *ids* (opening ranks; monotone, never reused) are data here, not
/// indices: `ids[slot]` names the bin currently occupying a slot,
/// [`VACANT`] marks a free one.
#[derive(Debug, Clone, Default)]
struct BinStore {
    /// Bin id occupying each slot ([`VACANT`] when free).
    ids: Vec<u32>,
    /// Current level in units.
    levels: Vec<u64>,
    /// Active item count.
    counts: Vec<u32>,
    /// Opening tick.
    opened: Vec<u64>,
    /// Tick of the last level change (integral bookkeeping).
    last_change: Vec<u64>,
    /// `Σ level·Δticks` accrued so far.
    integrals: Vec<u128>,
    /// Peak level in units.
    peaks: Vec<u64>,
    /// Item log, arrivals in placement order (moved into the bin's
    /// [`TickRecord`] on close).
    items: Vec<Vec<ItemId>>,
    /// Recycled slots of closed bins.
    free: Vec<u32>,
}

impl BinStore {
    /// Opens a bin with one item: recycles a free slot or grows every
    /// array by one. Returns the slot.
    fn alloc(&mut self, id: u32, size: u64, tick: u64, item: ItemId) -> u32 {
        if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            debug_assert_eq!(self.ids[s], VACANT, "free list holds only vacant slots");
            self.ids[s] = id;
            self.levels[s] = size;
            self.counts[s] = 1;
            self.opened[s] = tick;
            self.last_change[s] = tick;
            self.integrals[s] = 0;
            self.peaks[s] = size;
            debug_assert!(self.items[s].is_empty(), "released slot keeps no items");
            self.items[s].push(item);
            slot
        } else {
            let slot = self.ids.len() as u32;
            self.ids.push(id);
            self.levels.push(size);
            self.counts.push(1);
            self.opened.push(tick);
            self.last_change.push(tick);
            self.integrals.push(0);
            self.peaks.push(size);
            self.items.push(vec![item]);
            slot
        }
    }

    /// Returns a closed bin's slot to the free list. The item log
    /// must already have been moved out.
    fn release(&mut self, slot: u32) {
        self.ids[slot as usize] = VACANT;
        self.free.push(slot);
    }

    /// Accrues the level integral up to `tick`. Same
    /// zero-length-interval skip as the Rational engine — here it
    /// saves a `u128` multiply instead of two gcds.
    #[inline]
    fn advance_clock(&mut self, slot: usize, tick: u64) {
        let since = self.last_change[slot];
        if tick != since {
            self.integrals[slot] += self.levels[slot] as u128 * (tick - since) as u128;
            self.last_change[slot] = tick;
        }
    }

    /// Number of allocated slots (free or occupied) — the peak open
    /// count so far, and the store's memory high-water mark.
    fn slots(&self) -> usize {
        self.ids.len()
    }
}

/// A closed bin's integer history, converted in `finish`.
#[derive(Debug, Clone)]
struct TickRecord {
    id: BinId,
    opened: u64,
    closed: u64,
    items: Vec<ItemId>,
    integral: u128,
    peak: u64,
}

/// One active item's placement: its bin id, the bin's current
/// [`BinStore`] slot, and the item's size in units. `bin == VACANT`
/// marks a dense-set entry whose item is not active.
#[derive(Debug, Clone, Copy)]
struct ActiveEntry {
    bin: u32,
    slot: u32,
    units: u64,
}

impl ActiveEntry {
    const EMPTY: ActiveEntry = ActiveEntry {
        bin: VACANT,
        slot: 0,
        units: 0,
    };
}

/// The item → placement map, `O(1)` both ways.
///
/// Compiled replays have dense item ids (`0..n`, the compile-time
/// arrival ranks), so a flat vector indexed by id is the whole map.
/// Streaming sessions accept arbitrary caller-minted ids and use a
/// multiply-mix hash map instead, bounded by the peak active count.
/// The old engine kept a sorted `Vec<(ItemId, BinId, u64)>` here,
/// whose binary-search-plus-shift removal dominated departure time
/// (`departure_drain` ≈ 31% in `BENCH_profile.json` before this
/// layout).
#[derive(Debug, Clone)]
enum ActiveSet {
    /// Flat, indexed by `ItemId` — compiled replays (pre-sized to the
    /// instance) and streaming sessions with reasonably small ids.
    Dense(Vec<ActiveEntry>),
    /// Hashed by raw id: the fallback once a caller mints an id past
    /// [`DENSE_ID_LIMIT`], where a flat table would waste memory.
    Sparse(HashMap<u32, ActiveEntry, BuildIdHasher>),
}

/// Largest id the dense active table will *grow* to reach on the
/// streaming path before demoting to the hashed variant (pre-sized
/// compiled tables never grow, so compiled replays are exempt no
/// matter the instance size). 2^20 caps the table at 16 MiB while
/// keeping every realistically-minted id space on the flat O(1) path.
const DENSE_ID_LIMIT: usize = 1 << 20;

/// How a [`TickEngine`] answers placement queries. Starts [`Linear`]
/// and switches permanently to [`Tree`] the first time the open-bin
/// count exceeds the scan crossover — gaps and slots are carried by
/// the linear arrays, so the [`FitTree`] and its id→slot map are
/// rebuilt deterministically at the switch. Both modes implement the
/// exact same selection and tie-break rules, so the mode is invisible
/// in outcomes.
///
/// [`Linear`]: ScanMode::Linear
/// [`Tree`]: ScanMode::Tree
#[derive(Debug, Clone)]
enum ScanMode {
    /// Sweep the open bins in id order through [`crate::scan`].
    Linear(LinearScan),
    /// Query the [`FitTree`] (`O(log B)` descents).
    Tree,
}

/// Parallel arrays over the open bins in opening (id) order — the
/// linear mode's whole state. `gaps` is the dense `u64` slice the
/// vectorized [`crate::scan`] kernels sweep; `ids` (ascending: new
/// ids only grow, so a push keeps it sorted) and `slots` resolve a
/// hit position to the bin's identity and [`BinStore`] slot. A close
/// is one binary-search removal (`O(open)`, the same class as the
/// sweep itself); a departure that leaves the bin open is one
/// binary-search gap update.
#[derive(Debug, Clone, Default)]
struct LinearScan {
    gaps: Vec<u64>,
    ids: Vec<u32>,
    slots: Vec<u32>,
}

/// The integer-arithmetic twin of [`crate::engine::PackingEngine`].
///
/// Mirrors the exact engine's semantics — duplicate and feasibility
/// validation, time-regression checks, half-open interval
/// tie-breaking, peak and integral tracking — but every book is a
/// machine integer in data-oriented storage: bin state in the
/// slot-recycled `BinStore` arrays, the active set in an `O(1)`
/// `ActiveSet` slot map, and placement queries on a dense gap
/// slice via the chunked [`crate::scan`] sweeps while few bins are
/// open, or on a [`FitTree`] over `u64` keys (`gap + 1`, `0`
/// tombstoning closed bins) above [`SCAN_CROSSOVER`]. Conversion
/// back to exact [`Rational`]s happens once, in
/// [`finish`](Self::finish).
#[derive(Debug, Clone)]
pub struct TickEngine {
    policy: TickPolicy,
    capacity: u64,
    origin: Rational,
    /// `origin · time_scale` when the origin lies on the tick grid
    /// (always, for compiled instances: the time LCM folds in the
    /// origin's denominator) — lets [`time_of`](Self::time_of) build
    /// its result as a single fraction instead of a rational add.
    origin_ticks: Option<i128>,
    time_scale: i128,
    size_scale: i128,
    store: BinStore,
    /// Bins ever opened; the next bin id to mint.
    next_bin: u32,
    open_count: usize,
    closed: Vec<TickRecord>,
    active: ActiveSet,
    active_count: usize,
    assignments: Vec<(ItemId, BinId)>,
    scan: ScanMode,
    /// Placement index; empty until `scan` switches to `Tree`.
    tree: FitTree<u64>,
    /// Bin id → store slot; maintained only in tree mode (linear mode
    /// carries slots in its own arrays).
    tree_slots: HashMap<u32, u32, BuildIdHasher>,
    /// Open-bin count above which the scan promotes to the tree
    /// ([`SCAN_CROSSOVER`] unless a test overrides it).
    crossover: usize,
    now: Option<u64>,
    max_open: usize,
    /// Current total level across open bins, in units.
    level_total: u64,
    /// `Σ (closed − opened)` ticks over the closed bins.
    closed_ticks: u128,
    /// `Σ opened` ticks over the *open* bins (incremented on open,
    /// decremented on close); with `open_count · now` this yields the
    /// open bins' accrued usage without a scan.
    open_opened_sum: u128,
}

impl TickEngine {
    /// Creates an engine for one compiled instance under `policy`.
    /// Compiled item ids are dense arrival ranks, so the active set
    /// is a flat vector sized to the instance.
    pub fn new(compiled: &CompiledInstance, policy: TickPolicy) -> TickEngine {
        let mut engine = Self::with_grid(
            policy,
            compiled.origin,
            compiled.time_scale,
            compiled.size_scale,
        );
        engine.active = ActiveSet::Dense(vec![ActiveEntry::EMPTY; compiled.len()]);
        engine.assignments.reserve(compiled.len());
        engine
    }

    /// Creates an engine on an explicit grid: `time_scale` ticks per
    /// time unit, `size_scale` units per bin capacity, timestamps
    /// measured from `origin`. This is the streaming entry point — a
    /// session declares the grid up front instead of compiling a
    /// complete instance. Item ids are caller-minted, so the active
    /// set starts as an empty flat table that grows to the ids
    /// actually seen (hashed only past [`DENSE_ID_LIMIT`]).
    pub(crate) fn with_grid(
        policy: TickPolicy,
        origin: Rational,
        time_scale: i128,
        size_scale: i128,
    ) -> TickEngine {
        debug_assert!((1..=MAX_SCALE).contains(&time_scale));
        debug_assert!((1..=MAX_SCALE).contains(&size_scale));
        TickEngine {
            policy,
            capacity: size_scale as u64,
            origin_ticks: origin.scaled_to(time_scale),
            origin,
            time_scale,
            size_scale,
            store: BinStore::default(),
            next_bin: 0,
            open_count: 0,
            closed: Vec::new(),
            // Streams mint their own ids, but almost always from a
            // small space: start flat and demote to hashed only if an
            // id past DENSE_ID_LIMIT ever shows up.
            active: ActiveSet::Dense(Vec::new()),
            active_count: 0,
            assignments: Vec::new(),
            scan: ScanMode::Linear(LinearScan::default()),
            tree: FitTree::new(),
            tree_slots: HashMap::default(),
            crossover: SCAN_CROSSOVER,
            now: None,
            max_open: 0,
            level_total: 0,
            closed_ticks: 0,
            open_opened_sum: 0,
        }
    }

    /// Test-only override of the linear→tree promotion threshold.
    #[doc(hidden)]
    pub fn set_scan_crossover(&mut self, crossover: usize) {
        self.crossover = crossover;
    }

    /// Converts a tick back to the exact original timestamp.
    fn time_of(&self, tick: u64) -> Rational {
        // Grid-aligned origins (the overwhelmingly common case) fold
        // into one reduction; the rational add below would reduce
        // twice. Both forms are the same value, hence the same
        // canonical `Rational`.
        if let Some(o) = self.origin_ticks {
            if let Some(n) = o.checked_add(tick as i128) {
                return Rational::new(n, self.time_scale);
            }
        }
        self.origin + Rational::new(tick as i128, self.time_scale)
    }

    /// Converts a unit count back to an exact size/level.
    fn size_of(&self, units: u64) -> Rational {
        Rational::new(units as i128, self.size_scale)
    }

    /// Validates the clock without committing it: rejected events
    /// must leave the engine untouched (sessions rely on this to keep
    /// their journal replay bit-identical to the live run), so
    /// callers advance `self.now` only after the whole event is
    /// validated.
    fn check_time(&self, tick: u64) -> Result<(), PackingError> {
        if let Some(now) = self.now {
            if tick < now {
                return Err(PackingError::TimeRegression {
                    now: self.time_of(now),
                    event: self.time_of(tick),
                });
            }
        }
        Ok(())
    }

    /// Number of currently open bins.
    pub fn open_bins(&self) -> usize {
        self.open_count
    }

    /// Number of currently active items.
    pub fn active_items(&self) -> usize {
        self.active_count
    }

    /// `true` iff `item` arrived and has not departed.
    pub fn is_active(&self, item: ItemId) -> bool {
        self.active_get(item).is_some()
    }

    /// Engine clock as an exact timestamp.
    pub fn now(&self) -> Option<Rational> {
        self.now.map(|t| self.time_of(t))
    }

    /// Total level across the open bins (the current load), exact.
    pub fn load(&self) -> Rational {
        self.size_of(self.level_total)
    }

    /// Number of bins ever opened.
    pub fn bins_opened(&self) -> usize {
        self.next_bin as usize
    }

    /// Peak number of simultaneously open bins so far.
    pub fn peak_open_bins(&self) -> usize {
        self.max_open
    }

    /// Number of bin-state slots the engine has allocated. Slots are
    /// recycled through a free list when bins close, so this is the
    /// peak open-bin count, **not** the (unbounded) number of bins
    /// ever opened — the memory-flatness contract a long-running
    /// streaming session relies on, and what the soak test pins.
    pub fn slot_capacity(&self) -> usize {
        self.store.slots()
    }

    /// Usage time `Σ_k |U_k|` accrued so far (closed bins fully, open
    /// bins up to the engine clock), exact. Mirrors
    /// [`crate::engine::PackingEngine::usage_accrued`].
    pub fn usage_accrued(&self) -> Rational {
        let now = match self.now {
            Some(t) => t,
            None => return Rational::ZERO,
        };
        let open_ticks = self.open_count as u128 * now as u128 - self.open_opened_sum;
        Rational::new((self.closed_ticks + open_ticks) as i128, self.time_scale)
    }

    fn active_get(&self, item: ItemId) -> Option<ActiveEntry> {
        match &self.active {
            ActiveSet::Dense(entries) => entries
                .get(item.index())
                .copied()
                .filter(|e| e.bin != VACANT),
            ActiveSet::Sparse(map) => map.get(&item.0).copied(),
        }
    }

    fn active_insert(&mut self, item: ItemId, entry: ActiveEntry) {
        if item.index() >= DENSE_ID_LIMIT {
            if let ActiveSet::Dense(entries) = &self.active {
                // Only demote when the id would force a *grow* past
                // the limit — a pre-sized compiled table that already
                // covers the id stays flat.
                if item.index() >= entries.len() {
                    self.demote_active();
                }
            }
        }
        match &mut self.active {
            ActiveSet::Dense(entries) => {
                // Compiled ids are in-range by construction; direct
                // callers may mint larger ones, so grow to fit.
                if item.index() >= entries.len() {
                    entries.resize(item.index() + 1, ActiveEntry::EMPTY);
                }
                entries[item.index()] = entry;
            }
            ActiveSet::Sparse(map) => {
                map.insert(item.0, entry);
            }
        }
        self.active_count += 1;
    }

    /// One-way dense → hashed migration for id spaces too large for
    /// a flat table.
    #[cold]
    fn demote_active(&mut self) {
        let prior = std::mem::replace(&mut self.active, ActiveSet::Sparse(HashMap::default()));
        let ActiveSet::Dense(entries) = prior else {
            return;
        };
        let ActiveSet::Sparse(map) = &mut self.active else {
            unreachable!("just installed the sparse variant");
        };
        map.reserve(self.active_count);
        for (i, e) in entries.iter().enumerate() {
            if e.bin != VACANT {
                map.insert(i as u32, *e);
            }
        }
    }

    fn active_remove(&mut self, item: ItemId) -> Option<ActiveEntry> {
        let hit = match &mut self.active {
            ActiveSet::Dense(entries) => match entries.get_mut(item.index()) {
                Some(e) if e.bin != VACANT => Some(std::mem::replace(e, ActiveEntry::EMPTY)),
                _ => None,
            },
            ActiveSet::Sparse(map) => map.remove(&item.0),
        };
        if hit.is_some() {
            self.active_count -= 1;
        }
        hit
    }

    /// The active entries as `(item, bin, units)` sorted by item id
    /// (cold paths: promotion and finalization).
    fn active_sorted(&self) -> Vec<(ItemId, BinId, u64)> {
        match &self.active {
            ActiveSet::Dense(entries) => entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.bin != VACANT)
                .map(|(i, e)| (ItemId(i as u32), BinId(e.bin), e.units))
                .collect(),
            ActiveSet::Sparse(map) => {
                let mut all: Vec<(ItemId, BinId, u64)> = map
                    .iter()
                    .map(|(&id, e)| (ItemId(id), BinId(e.bin), e.units))
                    .collect();
                all.sort_unstable_by_key(|&(item, _, _)| item);
                all
            }
        }
    }

    /// One-way switch from the linear sweep to the [`FitTree`]: the
    /// index and the id→slot map are rebuilt from the linear arrays
    /// (which fully determine them), and every later query descends
    /// the tree.
    fn promote_to_tree(&mut self) {
        let ScanMode::Linear(lin) = std::mem::replace(&mut self.scan, ScanMode::Tree) else {
            return;
        };
        self.tree.clear();
        self.tree_slots.clear();
        for ((&id, &slot), &gap) in lin.ids.iter().zip(&lin.slots).zip(&lin.gaps) {
            self.tree.open(BinId(id), gap + 1);
            self.tree_slots.insert(id, slot);
        }
    }

    /// Processes an arrival: queries the policy, validates the
    /// placement, applies it. Returns the chosen bin.
    pub fn arrive(&mut self, item: ItemId, size: u64, tick: u64) -> Result<BinId, PackingError> {
        self.arrive_probed(&mut NoopProbe, item, size, tick)
    }

    /// [`arrive`](Self::arrive) with a profiling probe (phase spans
    /// plus the bins-examined / descent-depth sample). The detached
    /// [`NoopProbe`] instantiation monomorphizes to the plain
    /// [`arrive`](Self::arrive) machine code.
    pub fn arrive_probed<P: PhaseProbe + ?Sized>(
        &mut self,
        probe: &mut P,
        item: ItemId,
        size: u64,
        tick: u64,
    ) -> Result<BinId, PackingError> {
        probe.event(EventKind::Arrival);
        self.check_time(tick)?;
        let bin = self.apply_arrival(probe, item, size, tick)?;
        self.now = Some(tick);
        self.level_total += size;
        self.max_open = self.max_open.max(self.open_count);
        Ok(bin)
    }

    /// Applies one arrival burst — every event shares `tick`. One
    /// clock check up front; `level_total` and `max_open` flush once
    /// at the end (arrivals never close bins, so `open_count` is
    /// non-decreasing across the burst and its final value is the
    /// burst maximum).
    fn arrive_burst<P: PhaseProbe + ?Sized>(
        &mut self,
        probe: &mut P,
        events: &[TickEvent],
        items: &[TickItem],
        tick: u64,
    ) -> Result<(), PackingError> {
        self.check_time(tick)?;
        self.now = Some(tick);
        let mut units = 0u64;
        for ev in events {
            probe.event(EventKind::Arrival);
            let size = items[ev.item.index()].size;
            self.apply_arrival(probe, ev.item, size, tick)?;
            units += size;
        }
        self.level_total += units;
        self.max_open = self.max_open.max(self.open_count);
        Ok(())
    }

    /// The shared arrival core: everything except the clock check and
    /// the `level_total`/`max_open` bookkeeping, which the per-event
    /// and burst entry points fold in at their own cadence.
    fn apply_arrival<P: PhaseProbe + ?Sized>(
        &mut self,
        probe: &mut P,
        item: ItemId,
        size: u64,
        tick: u64,
    ) -> Result<BinId, PackingError> {
        if self.is_active(item) {
            return Err(PackingError::DuplicateItem(item));
        }
        probe.enter(Phase::FitScan);
        // A hit resolves to (bin id, store slot, linear position).
        let chosen = match &self.scan {
            ScanMode::Linear(lin) => {
                let hit = match self.policy {
                    TickPolicy::FirstFit => scan::first_fit(&lin.gaps, size),
                    TickPolicy::BestFit => scan::best_fit(&lin.gaps, size),
                    TickPolicy::WorstFit => scan::worst_fit(&lin.gaps, size),
                };
                if probe.is_active() {
                    // FF stops at its hit; BF/WF examine every bin.
                    let scanned = match (self.policy, hit) {
                        (TickPolicy::FirstFit, Some(pos)) => pos as u64 + 1,
                        _ => lin.gaps.len() as u64,
                    };
                    probe.count(ProbeCounter::BinsScanned, scanned);
                }
                hit.map(|pos| (lin.ids[pos], lin.slots[pos], pos))
            }
            // Shifted-key queries: stored keys are `gap + 1`, so
            // probe with `size + 1`; sizes are ≥ 1, so the probe is
            // ≥ 2 and can never match a tombstone.
            ScanMode::Tree => {
                let (hit, depth) = match self.policy {
                    TickPolicy::FirstFit => self.tree.first_fit_counted(size + 1),
                    TickPolicy::BestFit => self.tree.best_fit_counted(size + 1),
                    TickPolicy::WorstFit => self.tree.worst_fit_counted(size + 1),
                };
                if probe.is_active() {
                    probe.count(ProbeCounter::TreeDepth, depth as u64);
                }
                hit.map(|bin_id| {
                    let slot = *self
                        .tree_slots
                        .get(&bin_id.0)
                        .expect("tree hit resolves to a live slot");
                    (bin_id.0, slot, usize::MAX)
                })
            }
        };
        probe.exit(Phase::FitScan);
        let (bin_id, slot) = match chosen {
            Some((id, slot, pos)) => {
                let s = slot as usize;
                debug_assert!(
                    self.store.levels[s] + size <= self.capacity,
                    "scan returned an infeasible bin"
                );
                probe.enter(Phase::PlacementCommit);
                probe.enter(Phase::ClockAdvance);
                self.store.advance_clock(s, tick);
                probe.exit(Phase::ClockAdvance);
                let level = self.store.levels[s] + size;
                self.store.levels[s] = level;
                self.store.counts[s] += 1;
                self.store.items[s].push(item);
                if level > self.store.peaks[s] {
                    self.store.peaks[s] = level;
                }
                probe.exit(Phase::PlacementCommit);
                probe.enter(Phase::TreeSync);
                match &mut self.scan {
                    ScanMode::Linear(lin) => lin.gaps[pos] -= size,
                    ScanMode::Tree => self.tree.place(BinId(id), size),
                }
                probe.exit(Phase::TreeSync);
                (BinId(id), slot)
            }
            None => {
                let id = self.next_bin;
                self.next_bin += 1;
                probe.enter(Phase::PlacementCommit);
                let slot = self.store.alloc(id, size, tick, item);
                self.open_count += 1;
                self.open_opened_sum += tick as u128;
                probe.exit(Phase::PlacementCommit);
                probe.enter(Phase::TreeSync);
                let crossed = match &mut self.scan {
                    ScanMode::Linear(lin) => {
                        lin.gaps.push(self.capacity - size);
                        lin.ids.push(id); // ids ascend: stays sorted
                        lin.slots.push(slot);
                        self.open_count > self.crossover
                    }
                    ScanMode::Tree => {
                        self.tree.open(BinId(id), self.capacity - size + 1);
                        self.tree_slots.insert(id, slot);
                        false
                    }
                };
                if crossed {
                    self.promote_to_tree();
                }
                probe.exit(Phase::TreeSync);
                (BinId(id), slot)
            }
        };
        probe.enter(Phase::PlacementCommit);
        self.active_insert(
            item,
            ActiveEntry {
                bin: bin_id.0,
                slot,
                units: size,
            },
        );
        self.assignments.push((item, bin_id));
        probe.exit(Phase::PlacementCommit);
        Ok(bin_id)
    }

    /// Processes a departure: removes the item from its bin, closing
    /// the bin if it empties.
    pub fn depart(&mut self, item: ItemId, tick: u64) -> Result<BinId, PackingError> {
        self.depart_probed(&mut NoopProbe, item, tick)
    }

    /// [`depart`](Self::depart) with a profiling probe; see
    /// [`arrive_probed`](Self::arrive_probed) for the probe contract.
    pub fn depart_probed<P: PhaseProbe + ?Sized>(
        &mut self,
        probe: &mut P,
        item: ItemId,
        tick: u64,
    ) -> Result<BinId, PackingError> {
        probe.event(EventKind::Departure);
        self.check_time(tick)?;
        let (bin, units) = self.apply_departure(probe, item, tick)?;
        self.now = Some(tick);
        self.level_total -= units;
        Ok(bin)
    }

    /// Applies one departure burst — every event shares `tick`. One
    /// clock check up front, one `level_total` flush at the end.
    fn depart_burst<P: PhaseProbe + ?Sized>(
        &mut self,
        probe: &mut P,
        events: &[TickEvent],
        tick: u64,
    ) -> Result<(), PackingError> {
        self.check_time(tick)?;
        self.now = Some(tick);
        let mut units = 0u64;
        for ev in events {
            probe.event(EventKind::Departure);
            let (_, u) = self.apply_departure(probe, ev.item, tick)?;
            units += u;
        }
        self.level_total -= units;
        Ok(())
    }

    /// The shared departure core: everything except the clock check
    /// and the `level_total` bookkeeping.
    fn apply_departure<P: PhaseProbe + ?Sized>(
        &mut self,
        probe: &mut P,
        item: ItemId,
        tick: u64,
    ) -> Result<(BinId, u64), PackingError> {
        probe.enter(Phase::DepartureDrain);
        let Some(entry) = self.active_remove(item) else {
            probe.exit(Phase::DepartureDrain);
            return Err(PackingError::UnknownItem(item));
        };
        let s = entry.slot as usize;
        probe.enter(Phase::ClockAdvance);
        self.store.advance_clock(s, tick);
        probe.exit(Phase::ClockAdvance);
        self.store.levels[s] -= entry.units;
        self.store.counts[s] -= 1;
        let closed_now = self.store.counts[s] == 0;
        if closed_now {
            debug_assert_eq!(self.store.levels[s], 0, "empty bin must have zero level");
            let opened = self.store.opened[s];
            self.open_count -= 1;
            self.open_opened_sum -= opened as u128;
            self.closed_ticks += (tick - opened) as u128;
            self.closed.push(TickRecord {
                id: BinId(entry.bin),
                opened,
                closed: tick,
                items: std::mem::take(&mut self.store.items[s]),
                integral: self.store.integrals[s],
                peak: self.store.peaks[s],
            });
            self.store.release(entry.slot);
        }
        probe.exit(Phase::DepartureDrain);
        probe.enter(Phase::TreeSync);
        match &mut self.scan {
            ScanMode::Linear(lin) => {
                let at = lin
                    .ids
                    .binary_search(&entry.bin)
                    .expect("departing item's bin is in the scan order");
                if closed_now {
                    lin.gaps.remove(at);
                    lin.ids.remove(at);
                    lin.slots.remove(at);
                } else {
                    lin.gaps[at] += entry.units;
                }
            }
            ScanMode::Tree => {
                if closed_now {
                    self.tree.close(BinId(entry.bin));
                    self.tree_slots.remove(&entry.bin);
                } else {
                    self.tree
                        .set_gap(BinId(entry.bin), self.capacity - self.store.levels[s] + 1);
                }
            }
        }
        probe.exit(Phase::TreeSync);
        Ok((BinId(entry.bin), entry.units))
    }

    /// Converts the live integer books back to exact `Rational`s and
    /// hands them to a [`crate::engine::PackingEngine`], mid-run.
    ///
    /// This is the tick-to-exact *promotion* behind `Backend::Auto`
    /// streaming sessions: when an event leaves the declared grid,
    /// the session continues on the exact engine from precisely the
    /// state the integer replay reached. Every conversion below is
    /// the inverse of the compile-time rescaling, so the promoted
    /// engine's books are bit-identical to what an exact engine fed
    /// the same prefix would hold.
    pub(crate) fn into_exact(self) -> crate::engine::PackingEngine {
        use crate::bin::OpenBin;
        use crate::engine::LiveBin;
        let denom = self.time_scale * self.size_scale;
        let act = self.active_sorted();
        // One consumed-flag per active entry: an id may recur in a
        // bin's item log (depart, then re-arrive), but at most one
        // occurrence is active — the *latest* one, which is the
        // occurrence the exact engine would hold in `contents`.
        let mut consumed = vec![false; act.len()];
        // Occupied slots in bin-id (opening) order, as the exact
        // engine's books list them.
        let mut occupied: Vec<(u32, usize)> = self
            .store
            .ids
            .iter()
            .enumerate()
            .filter(|&(_, &id)| id != VACANT)
            .map(|(slot, &id)| (id, slot))
            .collect();
        occupied.sort_unstable();
        let mut open = Vec::with_capacity(self.open_count);
        let mut live = Vec::with_capacity(self.open_count);
        for &(id, s) in &occupied {
            let bin_id = BinId(id);
            let count = self.store.counts[s] as usize;
            let mut picked: Vec<(ItemId, u64)> = Vec::with_capacity(count);
            for &item in self.store.items[s].iter().rev() {
                if picked.len() == count {
                    break;
                }
                if let Ok(pos) = act.binary_search_by(|&(r, _, _)| r.cmp(&item)) {
                    let (_, b, units) = act[pos];
                    if b == bin_id && !consumed[pos] {
                        consumed[pos] = true;
                        picked.push((item, units));
                    }
                }
            }
            picked.reverse();
            open.push(OpenBin {
                id: bin_id,
                opened_at: self.time_of(self.store.opened[s]),
                level: self.size_of(self.store.levels[s]),
                contents: picked
                    .iter()
                    .map(|&(item, units)| (item, self.size_of(units)))
                    .collect(),
            });
            live.push(LiveBin {
                opened_at: self.time_of(self.store.opened[s]),
                items: self.store.items[s].clone(),
                level_integral: Rational::new(self.store.integrals[s] as i128, denom),
                peak_level: self.size_of(self.store.peaks[s]),
                last_change: self.time_of(self.store.last_change[s]),
            });
        }
        let closed = self
            .closed
            .iter()
            .map(|rec| BinRecord {
                id: rec.id,
                usage: Interval::new(self.time_of(rec.opened), self.time_of(rec.closed)),
                items: rec.items.clone(),
                level_integral: Rational::new(rec.integral as i128, denom),
                peak_level: self.size_of(rec.peak),
            })
            .collect();
        let active = act
            .iter()
            .map(|&(item, bin, units)| (item, bin, self.size_of(units)))
            .collect();
        let now = self.now.map(|t| self.time_of(t));
        crate::engine::PackingEngine::from_books(
            open,
            live,
            closed,
            active,
            self.assignments,
            self.next_bin,
            now,
            self.max_open,
        )
    }

    /// Finalizes the run, converting every integer book back to the
    /// exact `Rational` form of [`PackingOutcome`]. Fails if items
    /// are still active.
    pub fn finish(mut self, algorithm: &str) -> Result<PackingOutcome, PackingError> {
        if self.active_count > 0 {
            return Err(PackingError::ItemsStillActive(self.active_count));
        }
        debug_assert_eq!(self.open_count, 0);
        let mut closed = std::mem::take(&mut self.closed);
        closed.sort_by_key(|b| b.id);
        self.assignments.sort_by_key(|&(r, _)| r);
        // Both scales ≤ 2³², so the product fits i128. Every
        // `integral/denom` shares whatever factor the whole batch
        // shares with the grid denominator (usually most of `T·S` —
        // integrals are sums of `level·Δtick` products on the same
        // grid), so that factor is divided out once, here, and the
        // per-bin `Rational::new` reduction runs on pre-shrunk
        // operands. `Rational::new` always reduces fully, so the
        // results are bit-identical to the unbatched form.
        let denom = self.time_scale * self.size_scale;
        let mut shared = denom;
        for rec in &closed {
            if shared == 1 {
                break;
            }
            shared = gcd128(rec.integral as i128, shared);
        }
        let shared_denom = denom / shared;
        let bins: Vec<BinRecord> = closed
            .into_iter()
            .map(|rec| BinRecord {
                id: rec.id,
                usage: Interval::new(self.time_of(rec.opened), self.time_of(rec.closed)),
                items: rec.items,
                level_integral: Rational::new(rec.integral as i128 / shared, shared_denom),
                peak_level: self.size_of(rec.peak),
            })
            .collect();
        // `Σ |usage_k|` in one reduction: the running `closed_ticks`
        // tally already holds the integer sum, and an exact sum of
        // `b_k/T` fractions reduces to the same canonical value.
        let total_usage = Rational::new(self.closed_ticks as i128, self.time_scale);
        debug_assert_eq!(
            total_usage,
            bins.iter().map(|b| b.usage.len()).sum::<Rational>()
        );
        Ok(PackingOutcome::from_parts(
            algorithm.to_string(),
            bins,
            self.assignments,
            total_usage,
            self.max_open,
        ))
    }
}

/// Runs `policy` over a prebuilt [`CompiledInstance`] (alias for
/// [`CompiledInstance::run`], mirroring the legacy `run_packing`
/// shims' shape; batch callers normally go through
/// [`crate::session::Runner`]).
pub fn run_packing_compiled(
    compiled: &CompiledInstance,
    policy: TickPolicy,
) -> Result<PackingOutcome, PackingError> {
    compiled.run(policy)
}

/// Compile-then-run with automatic fallback: replays on the integer
/// [`TickEngine`] when the instance fits tick space, and otherwise on
/// the exact Rational engine via the corresponding `*Fast` algorithm.
/// Both paths return the same outcome bit for bit (algorithm name
/// included), so callers never observe which engine ran.
#[deprecated(
    since = "0.1.0",
    note = "use `dbp_core::session::Runner` with `Backend::Auto` and a policy algorithm"
)]
pub fn run_packing_auto(
    instance: &Instance,
    policy: TickPolicy,
) -> Result<PackingOutcome, PackingError> {
    match CompiledInstance::compile(instance) {
        Ok(compiled) => compiled.run(policy),
        Err(_) => {
            let mut algo = policy.fast_algo();
            let out = crate::engine::runner_exact(
                instance,
                None,
                algo.as_mut(),
                &mut crate::observe::NoopObserver,
            )?;
            Ok(out.with_algorithm(policy.name()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{BestFit, FirstFit, WorstFit};
    use crate::session::Runner;
    use dbp_numeric::rat;

    /// A churny scenario: mid-run closures, exact fills, equal-time
    /// departure/arrival boundaries (mirrors `fast_fit::scenario`).
    fn scenario() -> Instance {
        Instance::builder()
            .item(rat(7, 10), rat(0, 1), rat(10, 1))
            .item(rat(2, 5), rat(0, 1), rat(6, 1))
            .item(rat(9, 10), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(1, 1), rat(10, 1))
            .item(rat(3, 10), rat(2, 1), rat(10, 1))
            .item(rat(3, 5), rat(6, 1), rat(10, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn compile_rescales_onto_the_lcm_grid() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(1, 2), rat(7, 3)) // times on halves/thirds
            .item(rat(2, 3), rat(5, 4), rat(3, 1))
            .build()
            .unwrap();
        let c = CompiledInstance::compile(&inst).unwrap();
        assert_eq!(c.origin(), rat(1, 2));
        assert_eq!(c.time_scale(), 12); // lcm(2, 3, 4, 1)
        assert_eq!(c.size_scale(), 6); // lcm(2, 3)
        assert_eq!(c.capacity(), 6);
        assert_eq!(
            c.items(),
            &[
                TickItem {
                    size: 3,
                    arrival: 0,
                    departure: 22
                },
                TickItem {
                    size: 4,
                    arrival: 9,
                    departure: 30
                },
            ]
        );
        // Schedule: arrivals/departures in (tick, class) order.
        let order: Vec<(u64, EventClass)> =
            c.schedule().iter().map(|e| (e.tick, e.class)).collect();
        assert_eq!(
            order,
            vec![
                (0, EventClass::Arrival),
                (9, EventClass::Arrival),
                (22, EventClass::Departure),
                (30, EventClass::Departure),
            ]
        );
    }

    #[test]
    fn negative_timestamps_compile_via_the_origin_shift() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(-3, 2), rat(1, 1))
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .build()
            .unwrap();
        let c = CompiledInstance::compile(&inst).unwrap();
        assert_eq!(c.origin(), rat(-3, 2));
        assert_eq!(c.items()[0].arrival, 0);
        let out = c.run(TickPolicy::FirstFit).unwrap();
        let reference = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn tick_runs_are_bit_identical_to_the_rational_engine() {
        let inst = scenario();
        for (policy, mut reference) in [
            (
                TickPolicy::FirstFit,
                Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            ),
            (TickPolicy::BestFit, Box::new(BestFit::new())),
            (TickPolicy::WorstFit, Box::new(WorstFit::new())),
        ] {
            let compiled = CompiledInstance::compile(&inst).unwrap();
            let tick = compiled.run(policy).unwrap();
            let exact = Runner::new(&inst).run(reference.as_mut()).unwrap();
            assert_eq!(tick, exact, "{} diverged", policy.name());
        }
    }

    #[test]
    fn compiled_instance_is_reusable_across_policies_and_runs() {
        let inst = scenario();
        let compiled = CompiledInstance::compile(&inst).unwrap();
        let a = compiled.run(TickPolicy::FirstFit).unwrap();
        let b = compiled.run(TickPolicy::FirstFit).unwrap();
        assert_eq!(a, b);
        let bf = run_packing_compiled(&compiled, TickPolicy::BestFit).unwrap();
        assert_eq!(bf, Runner::new(&inst).run(&mut BestFit::new()).unwrap());
    }

    #[test]
    fn oversized_denominators_refuse_to_compile() {
        // Two coprime five-digit-squared denominators push the LCM
        // past u32::MAX.
        let huge_times = Instance::builder()
            .item(rat(1, 2), rat(1, 99991), rat(2, 1))
            .item(rat(1, 2), rat(1, 99989), rat(2, 1))
            .build()
            .unwrap();
        assert_eq!(
            CompiledInstance::compile(&huge_times).unwrap_err(),
            CompileError::TimeScaleOverflow
        );
        let huge_sizes = Instance::builder()
            .item(rat(1, 99991), rat(0, 1), rat(1, 1))
            .item(rat(1, 99989), rat(0, 1), rat(1, 1))
            .build()
            .unwrap();
        assert_eq!(
            CompiledInstance::compile(&huge_sizes).unwrap_err(),
            CompileError::SizeScaleOverflow
        );
        // Scales fit but the horizon does not: fractional grid times
        // a five-billion-unit span.
        let huge_span = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(5_000_000_000, 1))
            .item(rat(1, 2), rat(1, 2), rat(1, 1))
            .build()
            .unwrap();
        assert_eq!(
            CompiledInstance::compile(&huge_span).unwrap_err(),
            CompileError::TickOverflow
        );
    }

    #[test]
    #[allow(deprecated)] // compat-shim coverage: the legacy auto entry point
    fn auto_falls_back_to_the_rational_engine_on_overflow() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(1, 99991), rat(2, 1))
            .item(rat(1, 2), rat(1, 99989), rat(2, 1))
            .item(rat(1, 2), rat(1, 1), rat(3, 1))
            .build()
            .unwrap();
        assert!(CompiledInstance::compile(&inst).is_err());
        let auto = run_packing_auto(&inst, TickPolicy::FirstFit).unwrap();
        let exact = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(auto, exact); // same outcome, name included
    }

    #[test]
    fn empty_instance_runs_to_an_empty_outcome() {
        let inst = Instance::new(Vec::new()).unwrap();
        let compiled = CompiledInstance::compile(&inst).unwrap();
        assert!(compiled.is_empty());
        let out = compiled.run(TickPolicy::FirstFit).unwrap();
        assert_eq!(out.bins_opened(), 0);
        assert_eq!(out.total_usage(), Rational::ZERO);
        assert_eq!(out, Runner::new(&inst).run(&mut FirstFit::new()).unwrap());
    }

    /// A staircase builder matching the perf-snapshot shape: item `i`
    /// lives on `[i, i + window)`, 4 of 5 items force singleton bins.
    fn staircase(n: i128, window: i128) -> Instance {
        let mut b = Instance::builder();
        for i in 0..n {
            let size = if i % 5 == 0 {
                rat(11 + (i * 13) % 23, 100)
            } else {
                rat(51 + (i * 7) % 49, 100)
            };
            b = b.item(size, rat(i, 1), rat(i + window, 1));
        }
        b.build().unwrap()
    }

    /// A staircase that pushes the open-bin count well past the scan
    /// crossover: the engine must switch from the linear sweep to the
    /// rebuilt tree mid-run without any outcome drift against the
    /// exact Rational engine, for every policy. The exact-engine
    /// reference makes production-constant scale too slow for a unit
    /// test, so the promotion is exercised at an overridden crossover
    /// — the switch logic is identical at any threshold, and the
    /// production constant is covered tick-vs-tick below.
    #[test]
    fn adaptive_scan_crossover_is_invisible_in_outcomes() {
        const CROSSOVER: usize = 64;
        let inst = staircase(5 * CROSSOVER as i128, 3 * CROSSOVER as i128);
        let compiled = CompiledInstance::compile(&inst).unwrap();
        for (policy, mut reference) in [
            (
                TickPolicy::FirstFit,
                Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            ),
            (TickPolicy::BestFit, Box::new(BestFit::new())),
            (TickPolicy::WorstFit, Box::new(WorstFit::new())),
        ] {
            let tick = compiled.run_with_crossover(policy, CROSSOVER).unwrap();
            assert!(
                tick.max_open_bins() > CROSSOVER,
                "scenario must cross the scan threshold"
            );
            let exact = Runner::new(&inst)
                .backend(crate::session::Backend::Exact)
                .run(reference.as_mut())
                .unwrap();
            assert_eq!(
                tick,
                exact,
                "{} diverged across the crossover",
                policy.name()
            );
        }
    }

    /// The production [`SCAN_CROSSOVER`] itself: a staircase wide
    /// enough to cross it must produce the same outcome as forced
    /// all-linear and forced all-tree replays (tick-vs-tick, so the
    /// scale stays cheap even in debug builds).
    #[test]
    fn production_crossover_matches_forced_scan_modes() {
        let inst = staircase(5 * SCAN_CROSSOVER as i128, 3 * SCAN_CROSSOVER as i128);
        let compiled = CompiledInstance::compile(&inst).unwrap();
        for policy in [
            TickPolicy::FirstFit,
            TickPolicy::BestFit,
            TickPolicy::WorstFit,
        ] {
            let adaptive = compiled.run(policy).unwrap();
            assert!(adaptive.max_open_bins() > SCAN_CROSSOVER);
            let all_linear = compiled.run_with_crossover(policy, usize::MAX).unwrap();
            let all_tree = compiled.run_with_crossover(policy, 0).unwrap();
            assert_eq!(adaptive, all_linear, "{} linear drift", policy.name());
            assert_eq!(adaptive, all_tree, "{} tree drift", policy.name());
        }
    }

    #[test]
    fn tick_engine_validates_like_the_exact_engine() {
        let inst = scenario();
        let compiled = CompiledInstance::compile(&inst).unwrap();
        let mut eng = TickEngine::new(&compiled, TickPolicy::FirstFit);
        eng.arrive(ItemId(0), 5, 10).unwrap();
        assert_eq!(
            eng.arrive(ItemId(0), 5, 11),
            Err(PackingError::DuplicateItem(ItemId(0)))
        );
        assert!(matches!(
            eng.arrive(ItemId(1), 5, 3),
            Err(PackingError::TimeRegression { .. })
        ));
        assert_eq!(
            eng.depart(ItemId(9), 12),
            Err(PackingError::UnknownItem(ItemId(9)))
        );
        assert_eq!(eng.open_bins(), 1);
        assert_eq!(eng.active_items(), 1);
        let err = eng.finish("FirstFit").unwrap_err();
        assert_eq!(err, PackingError::ItemsStillActive(1));
    }

    /// Soak: 100k arrive/depart cycles with a bounded concurrent
    /// population through the streaming (sparse) entry point. The
    /// free list must keep the bin-state slot arrays flat at the peak
    /// open count — the old `Vec<Option<_>>` layout grew one hole per
    /// closed bin and would report ~50k slots here.
    #[test]
    fn slot_reuse_keeps_streaming_state_flat() {
        const CYCLES: u32 = 100_000;
        // Width of the live window: how many items are in flight.
        const WIDTH: u32 = 8;
        let mut eng = TickEngine::with_grid(TickPolicy::FirstFit, Rational::ZERO, 1, 100);
        // Oversized items: every arrival opens its own bin, every
        // departure closes it — maximum slot churn.
        for i in 0..CYCLES {
            let tick = u64::from(i);
            eng.arrive(ItemId(i), 51, tick).unwrap();
            if i >= WIDTH {
                eng.depart(ItemId(i - WIDTH), tick).unwrap();
            }
        }
        assert_eq!(eng.open_bins(), WIDTH as usize);
        assert_eq!(eng.bins_opened(), CYCLES as usize);
        assert_eq!(eng.peak_open_bins(), WIDTH as usize + 1);
        // The memory contract: slots track peak concurrency, not the
        // number of bins ever opened.
        assert_eq!(eng.slot_capacity(), eng.peak_open_bins());
        // Drain and finish; the outcome still reports every bin.
        for i in (CYCLES - WIDTH)..CYCLES {
            eng.depart(ItemId(i), u64::from(CYCLES)).unwrap();
        }
        let out = eng.finish("FirstFit").unwrap();
        assert_eq!(out.bins_opened(), CYCLES as usize);
    }

    /// The burst-batched batch replay must match per-event
    /// application through the public engine API, including
    /// departure-before-arrival ties at shared ticks.
    #[test]
    fn burst_replay_matches_per_event_replay() {
        // Equal-tick churn: at t=1..4, one item departs and two
        // arrive at every step.
        let mut b = Instance::builder();
        for i in 0..12i128 {
            let arr = i / 3;
            b = b.item(rat(3 + (i % 4), 10), rat(arr, 1), rat(arr + 1 + (i % 2), 1));
        }
        let inst = b.build().unwrap();
        let compiled = CompiledInstance::compile(&inst).unwrap();
        for policy in [
            TickPolicy::FirstFit,
            TickPolicy::BestFit,
            TickPolicy::WorstFit,
        ] {
            let batch = compiled.run(policy).unwrap();
            let mut eng = TickEngine::new(&compiled, policy);
            for ev in compiled.schedule() {
                match ev.class {
                    EventClass::Arrival => {
                        eng.arrive(ev.item, compiled.items()[ev.item.index()].size, ev.tick)
                            .unwrap();
                    }
                    EventClass::Departure => {
                        eng.depart(ev.item, ev.tick).unwrap();
                    }
                    EventClass::Control => {}
                }
            }
            let per_event = eng.finish(policy.name()).unwrap();
            assert_eq!(batch, per_event, "{} diverged", policy.name());
        }
    }
}
