//! Tick compilation: integer-arithmetic replay of exact instances.
//!
//! The Rational engine ([`crate::engine`]) keeps every book — bin
//! levels, level integrals, usage periods — in exact `i128`
//! fractions, paying gcd reductions on the hot path. Exactness does
//! not require fractions at *runtime*: every concrete instance lies
//! on a finite grid, namely the LCM of its timestamp denominators
//! (for time) and of its size denominators (for size). Rescaling once
//! onto that grid turns the whole replay into `u64`/`u128` machine
//! arithmetic, and the final results convert back to the very same
//! reduced `Rational`s the exact engine would have produced:
//!
//! * **times** become ticks `(t − t₀)·T` where `T` is the time LCM
//!   and `t₀` the earliest arrival (subtracting `t₀` keeps negative
//!   timestamps representable in unsigned ticks);
//! * **sizes** become units `s·S` where `S` is the size LCM; the unit
//!   bin capacity becomes the integer `S`;
//! * **level integrals** accumulate as `Σ units·Δticks` in `u128` and
//!   convert back as the exact fraction over `T·S`.
//!
//! Because the rescaling map is strictly monotone, every comparison
//! an Any-Fit policy makes (feasibility `gap ≥ s`, Best-Fit minima,
//! Worst-Fit maxima, tie-breaks on bin id) has the same answer in
//! tick space as in rational space — so [`TickEngine`] produces
//! **bit-identical** [`PackingOutcome`]s, which the `prop_tick`
//! property suite asserts against both the linear-scan references and
//! the `*Fast` tree algorithms.
//!
//! Compilation is checked end to end: if either LCM, any scaled
//! quantity, or the tick horizon leaves the supported range (scales
//! and horizon each capped at `u32::MAX`, which bounds every interim
//! product below `u128`/`i128` limits), [`CompiledInstance::compile`]
//! reports [`CompileError`] and [`run_packing_auto`] falls back to
//! the exact Rational engine — same outcome, slower path.

use crate::algo::PackingAlgorithm;
use crate::bin::BinId;
use crate::engine::{BinRecord, PackingError, PackingOutcome};
use crate::fit_tree::FitTree;
use crate::item::{Instance, ItemId};
use crate::probe::{EventKind, NoopProbe, Phase, PhaseProbe, ProbeCounter};
use dbp_numeric::{checked_lcm, Interval, Rational};
use dbp_simcore::EventClass;

/// Hard cap on both LCM scales and the tick horizon. Keeping each
/// factor below `2³²` bounds every product the engine forms:
/// per-bin integrals by `capacity·horizon < 2⁶⁴` (fits `u128` and,
/// converted, `i128`), and the conversion denominator `T·S < 2⁶⁴`.
const MAX_SCALE: i128 = u32::MAX as i128;

/// Open-bin count above which a [`TickEngine`] switches its placement
/// scan from a plain linear sweep to the [`FitTree`] index. Below
/// this, a branchy cache-resident sweep over a handful of `u64` gaps
/// beats the tree's `BTreeSet` churn on every open/close/departure;
/// the `profile` perf-snapshot arm measures the regime boundary (see
/// `results/BENCH_profile.json`).
pub const SCAN_CROSSOVER: usize = 64;

/// Why an instance could not be rescaled to tick space. Every variant
/// routes [`run_packing_auto`] to the Rational fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The LCM of timestamp denominators exceeds [`u32::MAX`].
    TimeScaleOverflow,
    /// The LCM of size denominators exceeds [`u32::MAX`].
    SizeScaleOverflow,
    /// A scaled timestamp exceeds the `u32::MAX` tick horizon.
    TickOverflow,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::TimeScaleOverflow => write!(f, "time-denominator LCM out of range"),
            CompileError::SizeScaleOverflow => write!(f, "size-denominator LCM out of range"),
            CompileError::TickOverflow => write!(f, "scaled timestamp beyond the tick horizon"),
        }
    }
}

impl std::error::Error for CompileError {}

/// An item rescaled to integer ticks and size units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickItem {
    /// Size in units of `1/S` (always in `1..=capacity`).
    pub size: u64,
    /// Arrival tick, offset from the compile origin.
    pub arrival: u64,
    /// Departure tick (strictly greater than `arrival`).
    pub departure: u64,
}

/// One pre-sorted replay event of a compiled instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickEvent {
    /// Firing tick.
    pub tick: u64,
    /// Departures before arrivals at equal ticks (half-open
    /// intervals), exactly as in the Rational replay.
    pub class: EventClass,
    /// The item arriving or departing.
    pub item: ItemId,
}

/// Which Any-Fit selection rule a [`TickEngine`] runs per arrival.
///
/// Names are the canonical algorithm names, so a tick outcome is
/// literally identical — algorithm string included — to the
/// corresponding linear-scan reference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickPolicy {
    /// Earliest-opened feasible bin.
    FirstFit,
    /// Highest-level (tightest) feasible bin, ties earliest-opened.
    BestFit,
    /// Lowest-level (roomiest) feasible bin, ties earliest-opened.
    WorstFit,
}

impl TickPolicy {
    /// Canonical algorithm name reported in the outcome.
    pub fn name(self) -> &'static str {
        match self {
            TickPolicy::FirstFit => "FirstFit",
            TickPolicy::BestFit => "BestFit",
            TickPolicy::WorstFit => "WorstFit",
        }
    }

    /// The tree-backed Rational algorithm used on the fallback path.
    fn fast_algo(self) -> Box<dyn PackingAlgorithm> {
        match self {
            TickPolicy::FirstFit => Box::new(crate::algo::FirstFitFast::new()),
            TickPolicy::BestFit => Box::new(crate::algo::BestFitFast::new()),
            TickPolicy::WorstFit => Box::new(crate::algo::WorstFitFast::new()),
        }
    }

    /// The linear-scan Rational algorithm equivalent to this policy.
    /// Unlike the `*Fast` variants these are stateless, so they make
    /// correct decisions from *any* engine state — which is what the
    /// tick-to-exact promotion of a streaming session needs.
    pub(crate) fn linear_algo(self) -> Box<dyn PackingAlgorithm> {
        match self {
            TickPolicy::FirstFit => Box::new(crate::algo::FirstFit::new()),
            TickPolicy::BestFit => Box::new(crate::algo::BestFit::new()),
            TickPolicy::WorstFit => Box::new(crate::algo::WorstFit::new()),
        }
    }
}

/// An instance rescaled onto its integer grid, with a pre-sorted
/// replay schedule. Built once, replayed per algorithm.
#[derive(Debug, Clone)]
pub struct CompiledInstance {
    origin: Rational,
    time_scale: i128,
    size_scale: i128,
    capacity: u64,
    items: Vec<TickItem>,
    schedule: Vec<TickEvent>,
}

impl CompiledInstance {
    /// Rescales `instance` to tick space, or reports why it does not
    /// fit the supported integer range.
    pub fn compile(instance: &Instance) -> Result<CompiledInstance, CompileError> {
        let origin = instance
            .items()
            .iter()
            .map(|it| it.arrival())
            .min()
            .unwrap_or(Rational::ZERO);
        let mut time_scale: i128 = origin.denom();
        let mut size_scale: i128 = 1;
        for item in instance.items() {
            time_scale = checked_lcm(time_scale, item.arrival().denom())
                .filter(|&l| l <= MAX_SCALE)
                .ok_or(CompileError::TimeScaleOverflow)?;
            time_scale = checked_lcm(time_scale, item.departure().denom())
                .filter(|&l| l <= MAX_SCALE)
                .ok_or(CompileError::TimeScaleOverflow)?;
            size_scale = checked_lcm(size_scale, item.size.denom())
                .filter(|&l| l <= MAX_SCALE)
                .ok_or(CompileError::SizeScaleOverflow)?;
        }
        let mut items = Vec::with_capacity(instance.len());
        let mut entries = Vec::with_capacity(instance.len() * 2);
        for item in instance.items() {
            let arrival = (item.arrival() - origin)
                .scaled_to(time_scale)
                .filter(|&t| (0..=MAX_SCALE).contains(&t))
                .ok_or(CompileError::TickOverflow)?;
            let departure = (item.departure() - origin)
                .scaled_to(time_scale)
                .filter(|&t| (0..=MAX_SCALE).contains(&t))
                .ok_or(CompileError::TickOverflow)?;
            let size = item
                .size
                .scaled_to(size_scale)
                .expect("size denominator divides the size LCM");
            debug_assert!(size >= 1 && size <= size_scale, "validated size in (0,1]");
            items.push(TickItem {
                size: size as u64,
                arrival: arrival as u64,
                departure: departure as u64,
            });
            entries.push(TickEvent {
                tick: arrival as u64,
                class: EventClass::Arrival,
                item: item.id,
            });
            entries.push(TickEvent {
                tick: departure as u64,
                class: EventClass::Departure,
                item: item.id,
            });
        }
        // Stable sort: full `(tick, class)` ties keep insertion (item)
        // order — the same total order the seq-numbered heap produces.
        entries.sort_by_key(|e| (e.tick, e.class));
        Ok(CompiledInstance {
            origin,
            time_scale,
            size_scale,
            capacity: size_scale as u64,
            items,
            schedule: entries,
        })
    }

    /// The timestamp subtracted before scaling (earliest arrival).
    pub fn origin(&self) -> Rational {
        self.origin
    }

    /// Ticks per time unit (`T`, the timestamp-denominator LCM).
    pub fn time_scale(&self) -> i128 {
        self.time_scale
    }

    /// Units per bin capacity (`S`, the size-denominator LCM).
    pub fn size_scale(&self) -> i128 {
        self.size_scale
    }

    /// The integer bin capacity (`== size_scale`).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The rescaled items, indexed by [`ItemId`].
    pub fn items(&self) -> &[TickItem] {
        &self.items
    }

    /// The pre-sorted replay schedule (two events per item).
    pub fn schedule(&self) -> &[TickEvent] {
        &self.schedule
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the instance has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Replays the schedule through a [`TickEngine`] under `policy`.
    /// The schedule is borrowed, never rebuilt: a sweep calls this
    /// once per algorithm on one compiled instance.
    pub fn run(&self, policy: TickPolicy) -> Result<PackingOutcome, PackingError> {
        self.run_probed(policy, &mut NoopProbe)
    }

    /// [`run`](Self::run) with a profiling probe bracketing every
    /// event's phases (see [`PhaseProbe`]). The detached
    /// ([`NoopProbe`]) instantiation is what [`run`](Self::run)
    /// monomorphizes to, at zero cost.
    pub fn run_probed<P: PhaseProbe + ?Sized>(
        &self,
        policy: TickPolicy,
        probe: &mut P,
    ) -> Result<PackingOutcome, PackingError> {
        let mut engine = TickEngine::new(self, policy);
        for ev in &self.schedule {
            match ev.class {
                EventClass::Arrival => {
                    engine.arrive_probed(
                        probe,
                        ev.item,
                        self.items[ev.item.index()].size,
                        ev.tick,
                    )?;
                }
                EventClass::Departure => {
                    engine.depart_probed(probe, ev.item, ev.tick)?;
                }
                EventClass::Control => {}
            }
        }
        engine.finish(policy.name())
    }
}

/// Per-bin integer bookkeeping while a tick run is live.
#[derive(Debug, Clone)]
struct TickLive {
    level: u64,
    count: u32,
    opened: u64,
    items: Vec<ItemId>,
    integral: u128,
    peak: u64,
    last_change: u64,
}

/// A closed bin's integer history, converted in `finish`.
#[derive(Debug, Clone)]
struct TickRecord {
    id: BinId,
    opened: u64,
    closed: u64,
    items: Vec<ItemId>,
    integral: u128,
    peak: u64,
}

/// How a [`TickEngine`] answers placement queries. Starts [`Linear`]
/// (no index maintenance at all) and switches permanently to [`Tree`]
/// the first time the open-bin count exceeds [`SCAN_CROSSOVER`] —
/// gaps are derivable from the live levels, so the [`FitTree`] is
/// rebuilt deterministically at the switch. Both modes implement the
/// exact same selection and tie-break rules, so the mode is invisible
/// in outcomes.
///
/// [`Linear`]: ScanMode::Linear
/// [`Tree`]: ScanMode::Tree
#[derive(Debug, Clone)]
enum ScanMode {
    /// Sweep the open bins in id order. `order` holds the open bin
    /// ids ascending — new ids only ever grow, so a push keeps it
    /// sorted, and a close is one binary-search removal (`O(open)`,
    /// the same class as the sweep itself).
    Linear { order: Vec<u32> },
    /// Query the [`FitTree`] (`O(log B)` descents).
    Tree,
}

/// The integer-arithmetic twin of [`crate::engine::PackingEngine`].
///
/// Mirrors the exact engine's semantics — duplicate and feasibility
/// validation, time-regression checks, half-open interval
/// tie-breaking, peak and integral tracking — but every book is a
/// machine integer: levels and peaks in `u64`, level integrals in
/// `u128`. Placement queries run as a linear sweep while few bins are
/// open and on a [`FitTree`] over `u64` keys (`gap + 1`, `0`
/// tombstoning closed bins) above [`SCAN_CROSSOVER`], so the
/// per-arrival decision always costs machine-integer compares at the
/// winning regime's rate. Conversion back to exact [`Rational`]s
/// happens once, in [`finish`](Self::finish).
#[derive(Debug, Clone)]
pub struct TickEngine {
    policy: TickPolicy,
    capacity: u64,
    origin: Rational,
    time_scale: i128,
    size_scale: i128,
    /// Bin state indexed by bin id (`None` once closed). Ids are
    /// dense opening ranks, so no slot indirection is needed.
    bins: Vec<Option<TickLive>>,
    open_count: usize,
    closed: Vec<TickRecord>,
    /// item → (bin, size) for active items, sorted by item id.
    active: Vec<(ItemId, BinId, u64)>,
    assignments: Vec<(ItemId, BinId)>,
    scan: ScanMode,
    /// Placement index; empty until `scan` switches to `Tree`.
    tree: FitTree<u64>,
    now: Option<u64>,
    max_open: usize,
    /// Current total level across open bins, in units.
    level_total: u64,
    /// `Σ (closed − opened)` ticks over the closed bins.
    closed_ticks: u128,
    /// `Σ opened` ticks over the *open* bins (incremented on open,
    /// decremented on close); with `open_count · now` this yields the
    /// open bins' accrued usage without a scan.
    open_opened_sum: u128,
}

impl TickEngine {
    /// Creates an engine for one compiled instance under `policy`.
    pub fn new(compiled: &CompiledInstance, policy: TickPolicy) -> TickEngine {
        Self::with_grid(
            policy,
            compiled.origin,
            compiled.time_scale,
            compiled.size_scale,
        )
    }

    /// Creates an engine on an explicit grid: `time_scale` ticks per
    /// time unit, `size_scale` units per bin capacity, timestamps
    /// measured from `origin`. This is the streaming entry point — a
    /// session declares the grid up front instead of compiling a
    /// complete instance.
    pub(crate) fn with_grid(
        policy: TickPolicy,
        origin: Rational,
        time_scale: i128,
        size_scale: i128,
    ) -> TickEngine {
        debug_assert!((1..=MAX_SCALE).contains(&time_scale));
        debug_assert!((1..=MAX_SCALE).contains(&size_scale));
        TickEngine {
            policy,
            capacity: size_scale as u64,
            origin,
            time_scale,
            size_scale,
            bins: Vec::new(),
            open_count: 0,
            closed: Vec::new(),
            active: Vec::new(),
            assignments: Vec::new(),
            scan: ScanMode::Linear { order: Vec::new() },
            tree: FitTree::new(),
            now: None,
            max_open: 0,
            level_total: 0,
            closed_ticks: 0,
            open_opened_sum: 0,
        }
    }

    /// Converts a tick back to the exact original timestamp.
    fn time_of(&self, tick: u64) -> Rational {
        self.origin + Rational::new(tick as i128, self.time_scale)
    }

    /// Converts a unit count back to an exact size/level.
    fn size_of(&self, units: u64) -> Rational {
        Rational::new(units as i128, self.size_scale)
    }

    fn check_time(&mut self, tick: u64) -> Result<(), PackingError> {
        if let Some(now) = self.now {
            if tick < now {
                return Err(PackingError::TimeRegression {
                    now: self.time_of(now),
                    event: self.time_of(tick),
                });
            }
        }
        self.now = Some(tick);
        Ok(())
    }

    /// Number of currently open bins.
    pub fn open_bins(&self) -> usize {
        self.open_count
    }

    /// Number of currently active items.
    pub fn active_items(&self) -> usize {
        self.active.len()
    }

    /// `true` iff `item` arrived and has not departed.
    pub fn is_active(&self, item: ItemId) -> bool {
        self.active
            .binary_search_by(|(r, _, _)| r.cmp(&item))
            .is_ok()
    }

    /// Engine clock as an exact timestamp.
    pub fn now(&self) -> Option<Rational> {
        self.now.map(|t| self.time_of(t))
    }

    /// Total level across the open bins (the current load), exact.
    pub fn load(&self) -> Rational {
        self.size_of(self.level_total)
    }

    /// Number of bins ever opened.
    pub fn bins_opened(&self) -> usize {
        self.bins.len()
    }

    /// Peak number of simultaneously open bins so far.
    pub fn peak_open_bins(&self) -> usize {
        self.max_open
    }

    /// Usage time `Σ_k |U_k|` accrued so far (closed bins fully, open
    /// bins up to the engine clock), exact. Mirrors
    /// [`crate::engine::PackingEngine::usage_accrued`].
    pub fn usage_accrued(&self) -> Rational {
        let now = match self.now {
            Some(t) => t,
            None => return Rational::ZERO,
        };
        let open_ticks = self.open_count as u128 * now as u128 - self.open_opened_sum;
        Rational::new((self.closed_ticks + open_ticks) as i128, self.time_scale)
    }

    #[inline]
    fn advance_bin_clock(bin: &mut TickLive, tick: u64) {
        // Same zero-length-interval skip as the Rational engine —
        // here it saves a u128 multiply instead of two gcds.
        if tick != bin.last_change {
            bin.integral += bin.level as u128 * (tick - bin.last_change) as u128;
            bin.last_change = tick;
        }
    }

    /// Answers a placement query by sweeping `order` (the open bins
    /// in id order) with the exact selection and tie-break rules of
    /// the tree queries: FF takes the first feasible id, BF the
    /// smallest feasible gap (ties earliest id), WF the largest gap
    /// if feasible (ties earliest id). Also returns the number of
    /// bins examined (probe accounting; FF stops at its hit).
    fn linear_select(&self, size: u64, order: &[u32]) -> (Option<BinId>, u64) {
        let gap = |id: u32| {
            let bin = self.bins[id as usize]
                .as_ref()
                .expect("scan order holds only open bins");
            self.capacity - bin.level
        };
        match self.policy {
            TickPolicy::FirstFit => {
                let mut scanned = 0u64;
                for &id in order {
                    scanned += 1;
                    if gap(id) >= size {
                        return (Some(BinId(id)), scanned);
                    }
                }
                (None, scanned)
            }
            TickPolicy::BestFit => {
                let mut best: Option<(u64, u32)> = None;
                for &id in order {
                    let g = gap(id);
                    // Strict `<` keeps the earliest id on gap ties.
                    if g >= size && best.is_none_or(|(bg, _)| g < bg) {
                        best = Some((g, id));
                    }
                }
                (best.map(|(_, id)| BinId(id)), order.len() as u64)
            }
            TickPolicy::WorstFit => {
                let mut roomiest: Option<(u64, u32)> = None;
                for &id in order {
                    let g = gap(id);
                    // Strict `>` keeps the earliest id on gap ties.
                    if roomiest.is_none_or(|(bg, _)| g > bg) {
                        roomiest = Some((g, id));
                    }
                }
                match roomiest {
                    Some((g, id)) if g >= size => (Some(BinId(id)), order.len() as u64),
                    _ => (None, order.len() as u64),
                }
            }
        }
    }

    /// One-way switch from linear scanning to the [`FitTree`]: the
    /// index is rebuilt from the live bins' gaps (which fully
    /// determine it), and every later query descends the tree.
    fn promote_to_tree(&mut self) {
        self.tree.clear();
        for (idx, slot) in self.bins.iter().enumerate() {
            if let Some(bin) = slot {
                self.tree
                    .open(BinId(idx as u32), self.capacity - bin.level + 1);
            }
        }
        self.scan = ScanMode::Tree;
    }

    /// Processes an arrival: queries the policy, validates the
    /// placement, applies it. Returns the chosen bin.
    pub fn arrive(&mut self, item: ItemId, size: u64, tick: u64) -> Result<BinId, PackingError> {
        self.arrive_probed(&mut NoopProbe, item, size, tick)
    }

    /// [`arrive`](Self::arrive) with a profiling probe (phase spans
    /// plus the bins-examined / descent-depth sample). The detached
    /// [`NoopProbe`] instantiation monomorphizes to the plain
    /// [`arrive`](Self::arrive) machine code.
    pub fn arrive_probed<P: PhaseProbe + ?Sized>(
        &mut self,
        probe: &mut P,
        item: ItemId,
        size: u64,
        tick: u64,
    ) -> Result<BinId, PackingError> {
        probe.event(EventKind::Arrival);
        self.check_time(tick)?;
        let active_pos = match self.active.binary_search_by(|(r, _, _)| r.cmp(&item)) {
            Ok(_) => return Err(PackingError::DuplicateItem(item)),
            Err(pos) => pos,
        };
        probe.enter(Phase::FitScan);
        let chosen = match &self.scan {
            ScanMode::Linear { order } => {
                let (hit, scanned) = self.linear_select(size, order);
                if probe.is_active() {
                    probe.count(ProbeCounter::BinsScanned, scanned);
                }
                hit
            }
            // Shifted-key queries: stored keys are `gap + 1`, so
            // probe with `size + 1`; sizes are ≥ 1, so the probe is
            // ≥ 2 and can never match a tombstone.
            ScanMode::Tree => {
                let (hit, depth) = match self.policy {
                    TickPolicy::FirstFit => self.tree.first_fit_counted(size + 1),
                    TickPolicy::BestFit => self.tree.best_fit_counted(size + 1),
                    TickPolicy::WorstFit => self.tree.worst_fit_counted(size + 1),
                };
                if probe.is_active() {
                    probe.count(ProbeCounter::TreeDepth, depth as u64);
                }
                hit
            }
        };
        probe.exit(Phase::FitScan);
        let bin_id = match chosen {
            Some(bin_id) => {
                let bin = self.bins[bin_id.index()]
                    .as_mut()
                    .ok_or(PackingError::NoSuchBin(bin_id))?;
                if bin.level + size > self.capacity {
                    return Err(PackingError::Infeasible {
                        bin: bin_id,
                        level: Rational::new(bin.level as i128, self.size_scale),
                        size: Rational::new(size as i128, self.size_scale),
                    });
                }
                probe.enter(Phase::PlacementCommit);
                probe.enter(Phase::ClockAdvance);
                Self::advance_bin_clock(bin, tick);
                probe.exit(Phase::ClockAdvance);
                bin.level += size;
                bin.count += 1;
                bin.items.push(item);
                if bin.level > bin.peak {
                    bin.peak = bin.level;
                }
                probe.exit(Phase::PlacementCommit);
                probe.enter(Phase::TreeSync);
                if let ScanMode::Tree = self.scan {
                    self.tree.place(bin_id, size);
                }
                probe.exit(Phase::TreeSync);
                bin_id
            }
            None => {
                let bin_id = BinId(self.bins.len() as u32);
                probe.enter(Phase::PlacementCommit);
                self.bins.push(Some(TickLive {
                    level: size,
                    count: 1,
                    opened: tick,
                    items: vec![item],
                    integral: 0,
                    peak: size,
                    last_change: tick,
                }));
                self.open_count += 1;
                self.open_opened_sum += tick as u128;
                self.max_open = self.max_open.max(self.open_count);
                probe.exit(Phase::PlacementCommit);
                probe.enter(Phase::TreeSync);
                let crossed = match &mut self.scan {
                    ScanMode::Linear { order } => {
                        order.push(bin_id.0); // ids ascend: stays sorted
                        self.open_count > SCAN_CROSSOVER
                    }
                    ScanMode::Tree => {
                        self.tree.open(bin_id, self.capacity - size + 1);
                        false
                    }
                };
                if crossed {
                    self.promote_to_tree();
                }
                probe.exit(Phase::TreeSync);
                bin_id
            }
        };
        probe.enter(Phase::PlacementCommit);
        self.level_total += size;
        self.active.insert(active_pos, (item, bin_id, size));
        self.assignments.push((item, bin_id));
        probe.exit(Phase::PlacementCommit);
        Ok(bin_id)
    }

    /// Processes a departure: removes the item from its bin, closing
    /// the bin if it empties.
    pub fn depart(&mut self, item: ItemId, tick: u64) -> Result<BinId, PackingError> {
        self.depart_probed(&mut NoopProbe, item, tick)
    }

    /// [`depart`](Self::depart) with a profiling probe; see
    /// [`arrive_probed`](Self::arrive_probed) for the probe contract.
    pub fn depart_probed<P: PhaseProbe + ?Sized>(
        &mut self,
        probe: &mut P,
        item: ItemId,
        tick: u64,
    ) -> Result<BinId, PackingError> {
        probe.event(EventKind::Departure);
        self.check_time(tick)?;
        probe.enter(Phase::DepartureDrain);
        let pos = match self.active.binary_search_by(|(r, _, _)| r.cmp(&item)) {
            Ok(pos) => pos,
            Err(_) => {
                probe.exit(Phase::DepartureDrain);
                return Err(PackingError::UnknownItem(item));
            }
        };
        let (_, bin_id, size) = self.active.remove(pos);
        self.level_total -= size;
        let bin = self.bins[bin_id.index()]
            .as_mut()
            .expect("active item's bin must be open");
        probe.enter(Phase::ClockAdvance);
        Self::advance_bin_clock(bin, tick);
        probe.exit(Phase::ClockAdvance);
        bin.level -= size;
        bin.count -= 1;
        let closed_now = bin.count == 0;
        let new_level = bin.level;
        if closed_now {
            debug_assert_eq!(bin.level, 0, "empty bin must have zero level");
            let bin = self.bins[bin_id.index()].take().expect("bin checked open");
            self.open_count -= 1;
            self.open_opened_sum -= bin.opened as u128;
            self.closed_ticks += (tick - bin.opened) as u128;
            self.closed.push(TickRecord {
                id: bin_id,
                opened: bin.opened,
                closed: tick,
                items: bin.items,
                integral: bin.integral,
                peak: bin.peak,
            });
        }
        probe.exit(Phase::DepartureDrain);
        probe.enter(Phase::TreeSync);
        match &mut self.scan {
            ScanMode::Linear { order } => {
                if closed_now {
                    let at = order
                        .binary_search(&bin_id.0)
                        .expect("closed bin in scan order");
                    order.remove(at);
                }
                // Still-open bins need no upkeep: the sweep reads
                // gaps straight off the live levels.
            }
            ScanMode::Tree => {
                if closed_now {
                    self.tree.close(bin_id);
                } else {
                    self.tree.set_gap(bin_id, self.capacity - new_level + 1);
                }
            }
        }
        probe.exit(Phase::TreeSync);
        Ok(bin_id)
    }

    /// Converts the live integer books back to exact `Rational`s and
    /// hands them to a [`crate::engine::PackingEngine`], mid-run.
    ///
    /// This is the tick-to-exact *promotion* behind `Backend::Auto`
    /// streaming sessions: when an event leaves the declared grid,
    /// the session continues on the exact engine from precisely the
    /// state the integer replay reached. Every conversion below is
    /// the inverse of the compile-time rescaling, so the promoted
    /// engine's books are bit-identical to what an exact engine fed
    /// the same prefix would hold.
    pub(crate) fn into_exact(self) -> crate::engine::PackingEngine {
        use crate::bin::OpenBin;
        use crate::engine::LiveBin;
        let denom = self.time_scale * self.size_scale;
        // One consumed-flag per active entry: an id may recur in a
        // bin's item log (depart, then re-arrive), but at most one
        // occurrence is active — the *latest* one, which is the
        // occurrence the exact engine would hold in `contents`.
        let mut consumed = vec![false; self.active.len()];
        let mut open = Vec::with_capacity(self.open_count);
        let mut live = Vec::with_capacity(self.open_count);
        for (idx, slot) in self.bins.iter().enumerate() {
            let Some(bin) = slot else { continue };
            let bin_id = BinId(idx as u32);
            let mut picked: Vec<(ItemId, u64)> = Vec::with_capacity(bin.count as usize);
            for &item in bin.items.iter().rev() {
                if picked.len() == bin.count as usize {
                    break;
                }
                if let Ok(pos) = self.active.binary_search_by(|(r, _, _)| r.cmp(&item)) {
                    let (_, b, units) = self.active[pos];
                    if b == bin_id && !consumed[pos] {
                        consumed[pos] = true;
                        picked.push((item, units));
                    }
                }
            }
            picked.reverse();
            open.push(OpenBin {
                id: bin_id,
                opened_at: self.time_of(bin.opened),
                level: self.size_of(bin.level),
                contents: picked
                    .iter()
                    .map(|&(item, units)| (item, self.size_of(units)))
                    .collect(),
            });
            live.push(LiveBin {
                opened_at: self.time_of(bin.opened),
                items: bin.items.clone(),
                level_integral: Rational::new(bin.integral as i128, denom),
                peak_level: self.size_of(bin.peak),
                last_change: self.time_of(bin.last_change),
            });
        }
        let closed = self
            .closed
            .iter()
            .map(|rec| BinRecord {
                id: rec.id,
                usage: Interval::new(self.time_of(rec.opened), self.time_of(rec.closed)),
                items: rec.items.clone(),
                level_integral: Rational::new(rec.integral as i128, denom),
                peak_level: self.size_of(rec.peak),
            })
            .collect();
        let active = self
            .active
            .iter()
            .map(|&(item, bin, units)| (item, bin, self.size_of(units)))
            .collect();
        let now = self.now.map(|t| self.time_of(t));
        crate::engine::PackingEngine::from_books(
            open,
            live,
            closed,
            active,
            self.assignments,
            self.bins.len() as u32,
            now,
            self.max_open,
        )
    }

    /// Finalizes the run, converting every integer book back to the
    /// exact `Rational` form of [`PackingOutcome`]. Fails if items
    /// are still active.
    pub fn finish(mut self, algorithm: &str) -> Result<PackingOutcome, PackingError> {
        if !self.active.is_empty() {
            return Err(PackingError::ItemsStillActive(self.active.len()));
        }
        debug_assert_eq!(self.open_count, 0);
        self.closed.sort_by_key(|b| b.id);
        self.assignments.sort_by_key(|&(r, _)| r);
        let denom = self.time_scale * self.size_scale; // each ≤ 2³², product fits i128
        let bins: Vec<BinRecord> = self
            .closed
            .iter()
            .map(|rec| BinRecord {
                id: rec.id,
                usage: Interval::new(self.time_of(rec.opened), self.time_of(rec.closed)),
                items: rec.items.clone(),
                level_integral: Rational::new(rec.integral as i128, denom),
                peak_level: self.size_of(rec.peak),
            })
            .collect();
        let total_usage = bins.iter().map(|b| b.usage.len()).sum();
        Ok(PackingOutcome::from_parts(
            algorithm.to_string(),
            bins,
            self.assignments,
            total_usage,
            self.max_open,
        ))
    }
}

/// Runs `policy` over a prebuilt [`CompiledInstance`] (alias for
/// [`CompiledInstance::run`], mirroring the legacy `run_packing`
/// shims' shape; batch callers normally go through
/// [`crate::session::Runner`]).
pub fn run_packing_compiled(
    compiled: &CompiledInstance,
    policy: TickPolicy,
) -> Result<PackingOutcome, PackingError> {
    compiled.run(policy)
}

/// Compile-then-run with automatic fallback: replays on the integer
/// [`TickEngine`] when the instance fits tick space, and otherwise on
/// the exact Rational engine via the corresponding `*Fast` algorithm.
/// Both paths return the same outcome bit for bit (algorithm name
/// included), so callers never observe which engine ran.
#[deprecated(
    since = "0.1.0",
    note = "use `dbp_core::session::Runner` with `Backend::Auto` and a policy algorithm"
)]
pub fn run_packing_auto(
    instance: &Instance,
    policy: TickPolicy,
) -> Result<PackingOutcome, PackingError> {
    match CompiledInstance::compile(instance) {
        Ok(compiled) => compiled.run(policy),
        Err(_) => {
            let mut algo = policy.fast_algo();
            let out = crate::engine::runner_exact(
                instance,
                None,
                algo.as_mut(),
                &mut crate::observe::NoopObserver,
            )?;
            Ok(out.with_algorithm(policy.name()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{BestFit, FirstFit, WorstFit};
    use crate::session::Runner;
    use dbp_numeric::rat;

    /// A churny scenario: mid-run closures, exact fills, equal-time
    /// departure/arrival boundaries (mirrors `fast_fit::scenario`).
    fn scenario() -> Instance {
        Instance::builder()
            .item(rat(7, 10), rat(0, 1), rat(10, 1))
            .item(rat(2, 5), rat(0, 1), rat(6, 1))
            .item(rat(9, 10), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(1, 1), rat(10, 1))
            .item(rat(3, 10), rat(2, 1), rat(10, 1))
            .item(rat(3, 5), rat(6, 1), rat(10, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn compile_rescales_onto_the_lcm_grid() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(1, 2), rat(7, 3)) // times on halves/thirds
            .item(rat(2, 3), rat(5, 4), rat(3, 1))
            .build()
            .unwrap();
        let c = CompiledInstance::compile(&inst).unwrap();
        assert_eq!(c.origin(), rat(1, 2));
        assert_eq!(c.time_scale(), 12); // lcm(2, 3, 4, 1)
        assert_eq!(c.size_scale(), 6); // lcm(2, 3)
        assert_eq!(c.capacity(), 6);
        assert_eq!(
            c.items(),
            &[
                TickItem {
                    size: 3,
                    arrival: 0,
                    departure: 22
                },
                TickItem {
                    size: 4,
                    arrival: 9,
                    departure: 30
                },
            ]
        );
        // Schedule: arrivals/departures in (tick, class) order.
        let order: Vec<(u64, EventClass)> =
            c.schedule().iter().map(|e| (e.tick, e.class)).collect();
        assert_eq!(
            order,
            vec![
                (0, EventClass::Arrival),
                (9, EventClass::Arrival),
                (22, EventClass::Departure),
                (30, EventClass::Departure),
            ]
        );
    }

    #[test]
    fn negative_timestamps_compile_via_the_origin_shift() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(-3, 2), rat(1, 1))
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .build()
            .unwrap();
        let c = CompiledInstance::compile(&inst).unwrap();
        assert_eq!(c.origin(), rat(-3, 2));
        assert_eq!(c.items()[0].arrival, 0);
        let out = c.run(TickPolicy::FirstFit).unwrap();
        let reference = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn tick_runs_are_bit_identical_to_the_rational_engine() {
        let inst = scenario();
        for (policy, mut reference) in [
            (
                TickPolicy::FirstFit,
                Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            ),
            (TickPolicy::BestFit, Box::new(BestFit::new())),
            (TickPolicy::WorstFit, Box::new(WorstFit::new())),
        ] {
            let compiled = CompiledInstance::compile(&inst).unwrap();
            let tick = compiled.run(policy).unwrap();
            let exact = Runner::new(&inst).run(reference.as_mut()).unwrap();
            assert_eq!(tick, exact, "{} diverged", policy.name());
        }
    }

    #[test]
    fn compiled_instance_is_reusable_across_policies_and_runs() {
        let inst = scenario();
        let compiled = CompiledInstance::compile(&inst).unwrap();
        let a = compiled.run(TickPolicy::FirstFit).unwrap();
        let b = compiled.run(TickPolicy::FirstFit).unwrap();
        assert_eq!(a, b);
        let bf = run_packing_compiled(&compiled, TickPolicy::BestFit).unwrap();
        assert_eq!(bf, Runner::new(&inst).run(&mut BestFit::new()).unwrap());
    }

    #[test]
    fn oversized_denominators_refuse_to_compile() {
        // Two coprime five-digit-squared denominators push the LCM
        // past u32::MAX.
        let huge_times = Instance::builder()
            .item(rat(1, 2), rat(1, 99991), rat(2, 1))
            .item(rat(1, 2), rat(1, 99989), rat(2, 1))
            .build()
            .unwrap();
        assert_eq!(
            CompiledInstance::compile(&huge_times).unwrap_err(),
            CompileError::TimeScaleOverflow
        );
        let huge_sizes = Instance::builder()
            .item(rat(1, 99991), rat(0, 1), rat(1, 1))
            .item(rat(1, 99989), rat(0, 1), rat(1, 1))
            .build()
            .unwrap();
        assert_eq!(
            CompiledInstance::compile(&huge_sizes).unwrap_err(),
            CompileError::SizeScaleOverflow
        );
        // Scales fit but the horizon does not: fractional grid times
        // a five-billion-unit span.
        let huge_span = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(5_000_000_000, 1))
            .item(rat(1, 2), rat(1, 2), rat(1, 1))
            .build()
            .unwrap();
        assert_eq!(
            CompiledInstance::compile(&huge_span).unwrap_err(),
            CompileError::TickOverflow
        );
    }

    #[test]
    #[allow(deprecated)] // compat-shim coverage: the legacy auto entry point
    fn auto_falls_back_to_the_rational_engine_on_overflow() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(1, 99991), rat(2, 1))
            .item(rat(1, 2), rat(1, 99989), rat(2, 1))
            .item(rat(1, 2), rat(1, 1), rat(3, 1))
            .build()
            .unwrap();
        assert!(CompiledInstance::compile(&inst).is_err());
        let auto = run_packing_auto(&inst, TickPolicy::FirstFit).unwrap();
        let exact = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(auto, exact); // same outcome, name included
    }

    #[test]
    fn empty_instance_runs_to_an_empty_outcome() {
        let inst = Instance::new(Vec::new()).unwrap();
        let compiled = CompiledInstance::compile(&inst).unwrap();
        assert!(compiled.is_empty());
        let out = compiled.run(TickPolicy::FirstFit).unwrap();
        assert_eq!(out.bins_opened(), 0);
        assert_eq!(out.total_usage(), Rational::ZERO);
        assert_eq!(out, Runner::new(&inst).run(&mut FirstFit::new()).unwrap());
    }

    /// A wide staircase that pushes the open-bin count well past
    /// [`SCAN_CROSSOVER`]: the engine must switch from the linear
    /// sweep to the rebuilt tree mid-run without any outcome drift
    /// against the exact Rational engine, for every policy.
    #[test]
    fn adaptive_scan_crossover_is_invisible_in_outcomes() {
        let mut b = Instance::builder();
        let window = 3 * SCAN_CROSSOVER as i128;
        for i in 0..(5 * SCAN_CROSSOVER as i128) {
            let size = if i % 5 == 0 {
                rat(11 + (i * 13) % 23, 100)
            } else {
                rat(51 + (i * 7) % 49, 100)
            };
            b = b.item(size, rat(i, 1), rat(i + window, 1));
        }
        let inst = b.build().unwrap();
        let compiled = CompiledInstance::compile(&inst).unwrap();
        for (policy, mut reference) in [
            (
                TickPolicy::FirstFit,
                Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            ),
            (TickPolicy::BestFit, Box::new(BestFit::new())),
            (TickPolicy::WorstFit, Box::new(WorstFit::new())),
        ] {
            let tick = compiled.run(policy).unwrap();
            assert!(
                tick.max_open_bins() > SCAN_CROSSOVER,
                "scenario must cross the scan threshold"
            );
            let exact = Runner::new(&inst)
                .backend(crate::session::Backend::Exact)
                .run(reference.as_mut())
                .unwrap();
            assert_eq!(
                tick,
                exact,
                "{} diverged across the crossover",
                policy.name()
            );
        }
    }

    #[test]
    fn tick_engine_validates_like_the_exact_engine() {
        let inst = scenario();
        let compiled = CompiledInstance::compile(&inst).unwrap();
        let mut eng = TickEngine::new(&compiled, TickPolicy::FirstFit);
        eng.arrive(ItemId(0), 5, 10).unwrap();
        assert_eq!(
            eng.arrive(ItemId(0), 5, 11),
            Err(PackingError::DuplicateItem(ItemId(0)))
        );
        assert!(matches!(
            eng.arrive(ItemId(1), 5, 3),
            Err(PackingError::TimeRegression { .. })
        ));
        assert_eq!(
            eng.depart(ItemId(9), 12),
            Err(PackingError::UnknownItem(ItemId(9)))
        );
        assert_eq!(eng.open_bins(), 1);
        assert_eq!(eng.active_items(), 1);
        let err = eng.finish("FirstFit").unwrap_err();
        assert_eq!(err, PackingError::ItemsStillActive(1));
    }
}
