//! The event-driven online packing engine.
//!
//! The engine is the referee between an instance and an online
//! algorithm: it replays arrivals and departures in time order
//! (departures first at equal timestamps — intervals are half-open),
//! asks the algorithm where to place each arriving item, **validates
//! feasibility**, and keeps exact books: per-bin usage periods,
//! per-bin level integrals, and the global usage-time objective
//! `Σ_k |U_k|` the paper minimizes.
//!
//! Algorithms cannot cheat: they see only [`crate::bin::BinSnapshot`]
//! (current open bins) and the arriving item's size — never a
//! departure time.

use crate::algo::{ArrivalView, PackingAlgorithm, Placement};
use crate::bin::{BinId, BinSnapshot, OpenBin};
use crate::item::{Instance, ItemId};
use crate::observe::{EngineObserver, NoopObserver};
use crate::probe::{EventKind, NoopProbe, Phase, PhaseProbe};
use dbp_numeric::{Interval, Rational};
use dbp_simcore::{EventClass, EventSchedule};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced while driving a packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackingError {
    /// The algorithm placed an item into a bin that cannot hold it.
    Infeasible {
        /// Offending bin.
        bin: BinId,
        /// Bin level before the placement.
        level: Rational,
        /// Size of the item being placed.
        size: Rational,
    },
    /// The algorithm referenced a bin that is not open.
    NoSuchBin(BinId),
    /// An item id arrived twice without departing.
    DuplicateItem(ItemId),
    /// A departure was issued for an item the engine is not tracking.
    UnknownItem(ItemId),
    /// Events were driven with a time earlier than the engine's clock.
    TimeRegression {
        /// Engine clock.
        now: Rational,
        /// Offending event time.
        event: Rational,
    },
    /// [`PackingEngine::finish`] was called while items are active.
    ItemsStillActive(usize),
}

impl fmt::Display for PackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackingError::Infeasible { bin, level, size } => write!(
                f,
                "infeasible placement: bin {bin} at level {level} cannot take size {size}"
            ),
            PackingError::NoSuchBin(b) => write!(f, "placement into non-open bin {b}"),
            PackingError::DuplicateItem(r) => write!(f, "item {r} arrived twice"),
            PackingError::UnknownItem(r) => write!(f, "departure of unknown item {r}"),
            PackingError::TimeRegression { now, event } => {
                write!(f, "event at {event} precedes engine clock {now}")
            }
            PackingError::ItemsStillActive(n) => {
                write!(f, "finish() with {n} items still active")
            }
        }
    }
}

impl std::error::Error for PackingError {}

/// Full history of one bin after the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinRecord {
    /// Bin identifier == opening rank.
    pub id: BinId,
    /// Usage period `U_k = [opened, closed)`.
    pub usage: Interval,
    /// Every item ever placed in the bin, in placement order.
    pub items: Vec<ItemId>,
    /// `∫ level(t) dt` over the usage period (exact).
    pub level_integral: Rational,
    /// Peak level reached.
    pub peak_level: Rational,
}

impl BinRecord {
    /// Mean level over the usage period (`None` for zero-length
    /// usage, which cannot happen for validated instances).
    pub fn mean_level(&self) -> Option<Rational> {
        let len = self.usage.len();
        (!len.is_zero()).then(|| self.level_integral / len)
    }
}

/// The result of a completed packing run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackingOutcome {
    algorithm: String,
    bins: Vec<BinRecord>,
    assignments: Vec<(ItemId, BinId)>,
    total_usage: Rational,
    max_open_bins: usize,
}

impl PackingOutcome {
    /// Name of the algorithm that produced this packing.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Per-bin histories, in opening order.
    pub fn bins(&self) -> &[BinRecord] {
        &self.bins
    }

    /// `(item, bin)` pairs sorted by item id.
    pub fn assignments(&self) -> &[(ItemId, BinId)] {
        &self.assignments
    }

    /// The bin an item was placed in.
    pub fn bin_of(&self, item: ItemId) -> Option<BinId> {
        self.assignments
            .binary_search_by(|(r, _)| r.cmp(&item))
            .ok()
            .map(|i| self.assignments[i].1)
    }

    /// The objective: total bin usage time `Σ_k |U_k|`
    /// (`FF_total(R)` for First Fit, §III.C).
    pub fn total_usage(&self) -> Rational {
        self.total_usage
    }

    /// Peak number of simultaneously open bins (the *standard* DBP
    /// objective, for comparison).
    pub fn max_open_bins(&self) -> usize {
        self.max_open_bins
    }

    /// Number of bins ever opened.
    pub fn bins_opened(&self) -> usize {
        self.bins.len()
    }

    /// Aggregate utilization: packed time–space demand divided by
    /// usage time (`None` for an empty run). Always `≤ 1`.
    pub fn utilization(&self) -> Option<Rational> {
        (!self.total_usage.is_zero()).then(|| {
            let packed: Rational = self.bins.iter().map(|b| b.level_integral).sum();
            packed / self.total_usage
        })
    }

    /// Assembles an outcome from already-finalized parts. Used by the
    /// tick engine (`crate::tick`), which keeps its books in machine
    /// integers and converts back to exact `Rational`s only here.
    pub(crate) fn from_parts(
        algorithm: String,
        bins: Vec<BinRecord>,
        assignments: Vec<(ItemId, BinId)>,
        total_usage: Rational,
        max_open_bins: usize,
    ) -> PackingOutcome {
        PackingOutcome {
            algorithm,
            bins,
            assignments,
            total_usage,
            max_open_bins,
        }
    }

    /// Relabels the algorithm name (the tick fallback path runs a
    /// `*Fast` algorithm but reports the canonical policy name so
    /// both engines produce literally identical outcomes).
    pub(crate) fn with_algorithm(mut self, algorithm: &str) -> PackingOutcome {
        self.algorithm = algorithm.to_string();
        self
    }
}

/// Per-bin mutable bookkeeping while the run is live. `pub(crate)`
/// so the tick engine can hand its integer books over to an exact
/// engine when a streaming session leaves the tick grid.
#[derive(Debug, Clone)]
pub(crate) struct LiveBin {
    pub(crate) opened_at: Rational,
    pub(crate) items: Vec<ItemId>,
    pub(crate) level_integral: Rational,
    pub(crate) peak_level: Rational,
    pub(crate) last_change: Rational,
}

/// Sentinel slot for a bin that is not (or no longer) open.
const NO_SLOT: u32 = u32::MAX;

/// The incremental engine. Drive it with [`arrive`](Self::arrive) /
/// [`depart`](Self::depart) in non-decreasing time order (the
/// instance-replay helper [`run_packing`] does this for you), then
/// call [`finish`](Self::finish).
pub struct PackingEngine {
    /// Open bins sorted by id, as exposed to algorithms.
    open: Vec<OpenBin>,
    /// Parallel bookkeeping for each open bin (same order as `open`).
    live: Vec<LiveBin>,
    /// Completed bin records.
    closed: Vec<BinRecord>,
    /// item -> (bin, size) for active items, sorted by item id.
    active: Vec<(ItemId, BinId, Rational)>,
    /// Final assignment log.
    assignments: Vec<(ItemId, BinId)>,
    /// bin id → current index into `open`/`live` (`NO_SLOT` once
    /// closed). Ids are dense opening ranks, so a flat vector gives
    /// O(1) lookup on both the arrival and departure paths; the
    /// entries right of a closing bin are patched during the same
    /// left-shift `Vec::remove` already performs.
    slot_of: Vec<u32>,
    next_bin: u32,
    now: Option<Rational>,
    max_open: usize,
    /// Running `Σ |U_k|` over the *closed* bins, maintained
    /// incrementally so live metrics never rescan the records.
    closed_usage: Rational,
}

impl Default for PackingEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PackingEngine {
    /// Creates an idle engine.
    pub fn new() -> PackingEngine {
        PackingEngine {
            open: Vec::new(),
            live: Vec::new(),
            closed: Vec::new(),
            active: Vec::new(),
            assignments: Vec::new(),
            slot_of: Vec::new(),
            next_bin: 0,
            now: None,
            max_open: 0,
            closed_usage: Rational::ZERO,
        }
    }

    /// Reassembles a mid-run engine from explicit books. This is the
    /// hand-over point of the tick-to-exact promotion: a streaming
    /// session that leaves its tick grid converts the integer books
    /// back to exact `Rational`s and continues here, bit-identically.
    ///
    /// `open`/`live` must be parallel and sorted by bin id, `active`
    /// sorted by item id, and ids dense opening ranks below
    /// `next_bin`.
    #[allow(clippy::too_many_arguments)] // the books are one atomic hand-over, not an API
    pub(crate) fn from_books(
        open: Vec<OpenBin>,
        live: Vec<LiveBin>,
        closed: Vec<BinRecord>,
        active: Vec<(ItemId, BinId, Rational)>,
        assignments: Vec<(ItemId, BinId)>,
        next_bin: u32,
        now: Option<Rational>,
        max_open: usize,
    ) -> PackingEngine {
        debug_assert_eq!(open.len(), live.len());
        debug_assert!(open.windows(2).all(|w| w[0].id < w[1].id));
        debug_assert!(active.windows(2).all(|w| w[0].0 < w[1].0));
        let mut slot_of = vec![NO_SLOT; next_bin as usize];
        for (slot, bin) in open.iter().enumerate() {
            slot_of[bin.id.index()] = slot as u32;
        }
        let closed_usage = closed.iter().map(|b| b.usage.len()).sum();
        PackingEngine {
            open,
            live,
            closed,
            active,
            assignments,
            slot_of,
            next_bin,
            now,
            max_open,
            closed_usage,
        }
    }

    /// Current index of `bin` in `open`/`live`, `None` if not open.
    #[inline]
    fn slot(&self, bin: BinId) -> Option<usize> {
        match self.slot_of.get(bin.index()) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Engine clock (time of the last processed event).
    pub fn now(&self) -> Option<Rational> {
        self.now
    }

    /// Number of currently open bins.
    pub fn open_bins(&self) -> usize {
        self.open.len()
    }

    /// Number of currently active items.
    pub fn active_items(&self) -> usize {
        self.active.len()
    }

    /// Snapshot of the open bins (what an algorithm would see).
    pub fn snapshot(&self) -> BinSnapshot<'_> {
        BinSnapshot::new(&self.open)
    }

    /// `true` iff `item` arrived and has not departed.
    pub fn is_active(&self, item: ItemId) -> bool {
        self.active
            .binary_search_by(|(r, _, _)| r.cmp(&item))
            .is_ok()
    }

    /// Total level across the open bins (the current load).
    pub fn load(&self) -> Rational {
        self.open.iter().map(|b| b.level).sum()
    }

    /// Number of bins ever opened.
    pub fn bins_opened(&self) -> usize {
        self.next_bin as usize
    }

    /// Peak number of simultaneously open bins so far.
    pub fn peak_open_bins(&self) -> usize {
        self.max_open
    }

    /// Usage time `Σ_k |U_k|` accrued so far: closed bins contribute
    /// their full usage period, open bins the span from their opening
    /// to the engine clock. This is the run's objective-to-date and
    /// what a live session reports as accumulated usage.
    pub fn usage_accrued(&self) -> Rational {
        let now = match self.now {
            Some(t) => t,
            None => return Rational::ZERO,
        };
        self.closed_usage
            + self
                .live
                .iter()
                .map(|l| now - l.opened_at)
                .sum::<Rational>()
    }

    /// Validates the clock without committing it: rejected events
    /// must leave the engine untouched (sessions rely on this to keep
    /// their journal replay bit-identical to the live run), so
    /// callers advance `self.now` only after the whole event is
    /// validated.
    fn check_time(&self, t: Rational) -> Result<(), PackingError> {
        if let Some(now) = self.now {
            if t < now {
                return Err(PackingError::TimeRegression { now, event: t });
            }
        }
        Ok(())
    }

    fn advance_bin_clock(open: &mut OpenBin, live: &mut LiveBin, t: Rational) {
        // Equal-time event bursts hit the same bin repeatedly at one
        // instant; the zero-length interval contributes nothing, so
        // skip the Rational multiply (two gcd reductions) entirely.
        if t == live.last_change {
            return;
        }
        live.level_integral += open.level * (t - live.last_change);
        live.last_change = t;
    }

    /// Processes an arrival: asks `algo` for a placement, validates
    /// it, and applies it. Returns the chosen bin.
    pub fn arrive(
        &mut self,
        algo: &mut dyn PackingAlgorithm,
        item: ItemId,
        size: Rational,
        time: Rational,
    ) -> Result<BinId, PackingError> {
        self.arrive_observed(algo, &mut NoopObserver, item, size, time)
    }

    /// [`arrive`](Self::arrive) with instrumentation: `obs` sees the
    /// arrival (pre-decision) and the validated placement
    /// (pre-application). Invalid decisions error out unobserved.
    pub fn arrive_observed(
        &mut self,
        algo: &mut dyn PackingAlgorithm,
        obs: &mut dyn EngineObserver,
        item: ItemId,
        size: Rational,
        time: Rational,
    ) -> Result<BinId, PackingError> {
        self.arrive_probed(algo, obs, &mut NoopProbe, item, size, time)
    }

    /// [`arrive_observed`](Self::arrive_observed) with profiling:
    /// `probe` brackets the event's phases and receives the
    /// algorithm's scan-work sample. Generic so the detached
    /// ([`NoopProbe`]) instantiation monomorphizes to the exact
    /// uninstrumented machine code.
    pub fn arrive_probed<P: PhaseProbe + ?Sized>(
        &mut self,
        algo: &mut dyn PackingAlgorithm,
        obs: &mut dyn EngineObserver,
        probe: &mut P,
        item: ItemId,
        size: Rational,
        time: Rational,
    ) -> Result<BinId, PackingError> {
        probe.event(EventKind::Arrival);
        self.check_time(time)?;
        // `active` is sorted by item id: one binary search both
        // rejects duplicates and yields the insertion point reused
        // for the post-placement insert below.
        let active_pos = match self.active.binary_search_by(|(r, _, _)| r.cmp(&item)) {
            Ok(_) => return Err(PackingError::DuplicateItem(item)),
            Err(pos) => pos,
        };
        self.now = Some(time);
        let arrival = ArrivalView { item, size, time };
        let placement = {
            let snap = BinSnapshot::new(&self.open);
            probe.enter(Phase::ObserverDispatch);
            obs.on_arrival(&arrival, &snap);
            probe.exit(Phase::ObserverDispatch);
            probe.enter(Phase::FitScan);
            let placement = algo.place(&arrival, &snap);
            probe.exit(Phase::FitScan);
            placement
        };
        if probe.is_active() {
            if let Some((counter, n)) = algo.probe_sample() {
                probe.count(counter, n);
            }
        }
        let (bin_id, new_bin) = match placement {
            Placement::Existing(bin_id) => {
                let idx = self.slot(bin_id).ok_or(PackingError::NoSuchBin(bin_id))?;
                if !self.open[idx].fits(size) {
                    return Err(PackingError::Infeasible {
                        bin: bin_id,
                        level: self.open[idx].level,
                        size,
                    });
                }
                {
                    let snap = BinSnapshot::new(&self.open);
                    probe.enter(Phase::ObserverDispatch);
                    obs.on_placement(&arrival, &snap, bin_id, false);
                    probe.exit(Phase::ObserverDispatch);
                }
                probe.enter(Phase::PlacementCommit);
                let (open, live) = (&mut self.open[idx], &mut self.live[idx]);
                probe.enter(Phase::ClockAdvance);
                Self::advance_bin_clock(open, live, time);
                probe.exit(Phase::ClockAdvance);
                open.level += size;
                open.contents.push((item, size));
                live.items.push(item);
                if open.level > live.peak_level {
                    live.peak_level = open.level;
                }
                probe.exit(Phase::PlacementCommit);
                (bin_id, false)
            }
            Placement::OpenNew => {
                let bin_id = BinId(self.next_bin);
                {
                    let snap = BinSnapshot::new(&self.open);
                    probe.enter(Phase::ObserverDispatch);
                    obs.on_placement(&arrival, &snap, bin_id, true);
                    obs.on_bin_opened(bin_id, time);
                    probe.exit(Phase::ObserverDispatch);
                }
                probe.enter(Phase::PlacementCommit);
                self.next_bin += 1;
                debug_assert_eq!(self.slot_of.len(), bin_id.index());
                self.slot_of.push(self.open.len() as u32);
                self.open.push(OpenBin {
                    id: bin_id,
                    opened_at: time,
                    level: size,
                    contents: vec![(item, size)],
                });
                self.live.push(LiveBin {
                    opened_at: time,
                    items: vec![item],
                    level_integral: Rational::ZERO,
                    peak_level: size,
                    last_change: time,
                });
                self.max_open = self.max_open.max(self.open.len());
                probe.exit(Phase::PlacementCommit);
                (bin_id, true)
            }
        };
        probe.enter(Phase::PlacementCommit);
        self.active.insert(active_pos, (item, bin_id, size));
        self.assignments.push((item, bin_id));
        probe.exit(Phase::PlacementCommit);
        probe.enter(Phase::TreeSync);
        algo.on_placed(item, bin_id, new_bin, time);
        probe.exit(Phase::TreeSync);
        Ok(bin_id)
    }

    /// Processes a departure: removes the item from its bin, closing
    /// the bin if it empties, and notifies `algo`.
    pub fn depart(
        &mut self,
        algo: &mut dyn PackingAlgorithm,
        item: ItemId,
        time: Rational,
    ) -> Result<BinId, PackingError> {
        self.depart_observed(algo, &mut NoopObserver, item, time)
    }

    /// [`depart`](Self::depart) with instrumentation: `obs` sees the
    /// departure (post-application) and, if the bin emptied, its
    /// complete closing record.
    pub fn depart_observed(
        &mut self,
        algo: &mut dyn PackingAlgorithm,
        obs: &mut dyn EngineObserver,
        item: ItemId,
        time: Rational,
    ) -> Result<BinId, PackingError> {
        self.depart_probed(algo, obs, &mut NoopProbe, item, time)
    }

    /// [`depart_observed`](Self::depart_observed) with profiling; see
    /// [`arrive_probed`](Self::arrive_probed) for the probe contract.
    pub fn depart_probed<P: PhaseProbe + ?Sized>(
        &mut self,
        algo: &mut dyn PackingAlgorithm,
        obs: &mut dyn EngineObserver,
        probe: &mut P,
        item: ItemId,
        time: Rational,
    ) -> Result<BinId, PackingError> {
        probe.event(EventKind::Departure);
        self.check_time(time)?;
        probe.enter(Phase::DepartureDrain);
        let pos = match self.active.binary_search_by(|(r, _, _)| r.cmp(&item)) {
            Ok(pos) => pos,
            Err(_) => {
                probe.exit(Phase::DepartureDrain);
                return Err(PackingError::UnknownItem(item));
            }
        };
        self.now = Some(time);
        let (_, bin_id, size) = self.active.remove(pos);
        let idx = self.slot(bin_id).expect("active item's bin must be open");
        {
            let (open, live) = (&mut self.open[idx], &mut self.live[idx]);
            probe.enter(Phase::ClockAdvance);
            Self::advance_bin_clock(open, live, time);
            probe.exit(Phase::ClockAdvance);
            open.level -= size;
            let in_bin = open
                .contents
                .iter()
                .position(|(r, _)| *r == item)
                .expect("item recorded in its bin");
            open.contents.remove(in_bin);
        }
        let closed_now = self.open[idx].contents.is_empty();
        if closed_now {
            let open = self.open.remove(idx);
            let live = self.live.remove(idx);
            // Patch the id→slot index alongside the left-shift the
            // two removals just performed.
            self.slot_of[open.id.index()] = NO_SLOT;
            for b in &self.open[idx..] {
                self.slot_of[b.id.index()] -= 1;
            }
            debug_assert!(open.level.is_zero(), "empty bin must have zero level");
            let usage = Interval::new(live.opened_at, time);
            self.closed_usage += usage.len();
            self.closed.push(BinRecord {
                id: open.id,
                usage,
                items: live.items,
                level_integral: live.level_integral,
                peak_level: live.peak_level,
            });
        }
        probe.exit(Phase::DepartureDrain);
        {
            let snap = BinSnapshot::new(&self.open);
            probe.enter(Phase::ObserverDispatch);
            obs.on_departure(item, bin_id, size, time, &snap);
            probe.exit(Phase::ObserverDispatch);
            probe.enter(Phase::TreeSync);
            algo.on_departure(item, bin_id, time, &snap);
            probe.exit(Phase::TreeSync);
            if closed_now {
                probe.enter(Phase::ObserverDispatch);
                obs.on_bin_closed(self.closed.last().expect("bin record just pushed"));
                probe.exit(Phase::ObserverDispatch);
                probe.enter(Phase::TreeSync);
                algo.on_bin_closed(bin_id, time);
                probe.exit(Phase::TreeSync);
            }
        }
        Ok(bin_id)
    }

    /// Finalizes the run. Fails if items are still active (every
    /// validated instance drains completely when replayed).
    pub fn finish(self, algorithm: &str) -> Result<PackingOutcome, PackingError> {
        self.finish_observed(algorithm, &mut NoopObserver)
    }

    /// [`finish`](Self::finish) with instrumentation: `obs` sees the
    /// assembled outcome before it is returned.
    pub fn finish_observed(
        mut self,
        algorithm: &str,
        obs: &mut dyn EngineObserver,
    ) -> Result<PackingOutcome, PackingError> {
        if !self.active.is_empty() {
            return Err(PackingError::ItemsStillActive(self.active.len()));
        }
        debug_assert!(self.open.is_empty());
        self.closed.sort_by_key(|b| b.id);
        self.assignments.sort_by_key(|&(r, _)| r);
        let total_usage = self.closed.iter().map(|b| b.usage.len()).sum();
        let outcome = PackingOutcome {
            algorithm: algorithm.to_string(),
            bins: self.closed,
            assignments: self.assignments,
            total_usage,
            max_open_bins: self.max_open,
        };
        obs.on_run_finished(&outcome);
        Ok(outcome)
    }
}

/// Builds the replay schedule of an instance: one arrival and one
/// departure event per item, pre-sorted into engine firing order.
///
/// The order is the canonical `(time, class, seq)` contract of
/// `dbp_simcore::EventQueue`: global time order; at equal times departures
/// precede arrivals (half-open intervals); equal-time same-class
/// events run in item order. Build it once per instance and replay it
/// against any number of algorithms with
/// [`run_packing_scheduled`] — a sweep over `k` algorithms pays one
/// sort instead of `k` heap fills of `2n` entries each.
pub fn event_schedule(instance: &Instance) -> EventSchedule<ItemId> {
    let mut entries = Vec::with_capacity(instance.len() * 2);
    for item in instance.items() {
        entries.push((item.arrival(), EventClass::Arrival, item.id));
        entries.push((item.departure(), EventClass::Departure, item.id));
    }
    EventSchedule::new(entries)
}

/// Exact-engine batch replay behind the deprecated `run_packing*`
/// shims: one [`crate::session::Runner`] invocation, unwrapped back
/// to the legacy [`PackingError`] (the exact batch path can surface
/// nothing else).
pub(crate) fn runner_exact(
    instance: &Instance,
    schedule: Option<&EventSchedule<ItemId>>,
    algo: &mut dyn PackingAlgorithm,
    obs: &mut dyn EngineObserver,
) -> Result<PackingOutcome, PackingError> {
    use crate::session::{Backend, Runner, SessionError};
    let mut runner = Runner::new(instance).backend(Backend::Exact).observer(obs);
    if let Some(schedule) = schedule {
        runner = runner.schedule(schedule);
    }
    runner.run(algo).map_err(|e| match e {
        SessionError::Packing(e) => e,
        other => unreachable!("exact batch replay surfaces only packing errors: {other}"),
    })
}

/// Replays a whole instance against an algorithm and returns the
/// completed outcome.
///
/// Event order: global time order; at equal times departures precede
/// arrivals (half-open intervals), and equal-time same-class events
/// run in item order — this is what makes adversarial constructions
/// like §VIII's "let n pairs of items arrive in sequence"
/// deterministic.
#[deprecated(
    since = "0.1.0",
    note = "use `dbp_core::session::Runner::new(i).run(algo)`"
)]
pub fn run_packing(
    instance: &Instance,
    algo: &mut dyn PackingAlgorithm,
) -> Result<PackingOutcome, PackingError> {
    runner_exact(instance, None, algo, &mut NoopObserver)
}

/// [`run_packing`] with instrumentation: every engine event is also
/// reported to `obs` (see [`EngineObserver`] for the exact firing
/// points).
#[deprecated(
    since = "0.1.0",
    note = "use `dbp_core::session::Runner::new(i).observer(obs).run(algo)`"
)]
pub fn run_packing_observed(
    instance: &Instance,
    algo: &mut dyn PackingAlgorithm,
    obs: &mut dyn EngineObserver,
) -> Result<PackingOutcome, PackingError> {
    runner_exact(instance, None, algo, obs)
}

/// [`run_packing`] over a prebuilt [`event_schedule`]: the caller
/// owns the schedule and may replay it against many algorithms.
///
/// `schedule` must be the schedule of `instance` (or at least
/// reference only its item ids in non-decreasing time order); a
/// mismatched schedule surfaces as a normal [`PackingError`].
#[deprecated(
    since = "0.1.0",
    note = "use `dbp_core::session::Runner::new(i).schedule(s).run(algo)`"
)]
pub fn run_packing_scheduled(
    instance: &Instance,
    schedule: &EventSchedule<ItemId>,
    algo: &mut dyn PackingAlgorithm,
) -> Result<PackingOutcome, PackingError> {
    runner_exact(instance, Some(schedule), algo, &mut NoopObserver)
}

/// [`run_packing_scheduled`] with instrumentation.
#[deprecated(
    since = "0.1.0",
    note = "use `dbp_core::session::Runner::new(i).schedule(s).observer(obs).run(algo)`"
)]
pub fn run_packing_scheduled_observed(
    instance: &Instance,
    schedule: &EventSchedule<ItemId>,
    algo: &mut dyn PackingAlgorithm,
    obs: &mut dyn EngineObserver,
) -> Result<PackingOutcome, PackingError> {
    runner_exact(instance, Some(schedule), algo, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::FirstFit;
    use crate::session::Runner;
    use dbp_numeric::rat;

    fn inst(specs: &[(i128, i128, i128, i128)]) -> Instance {
        // (size_num, size_den, arrival, departure)
        Instance::new(
            specs
                .iter()
                .map(|&(n, d, a, dep)| (rat(n, d), rat(a, 1), rat(dep, 1)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_item_single_bin() {
        let i = inst(&[(1, 2, 0, 3)]);
        let out = Runner::new(&i).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 1);
        assert_eq!(out.total_usage(), rat(3, 1));
        assert_eq!(out.max_open_bins(), 1);
        assert_eq!(out.bin_of(ItemId(0)), Some(BinId(0)));
        assert_eq!(out.bins()[0].usage, Interval::new(rat(0, 1), rat(3, 1)));
        assert_eq!(out.bins()[0].level_integral, rat(3, 2));
        assert_eq!(out.bins()[0].peak_level, rat(1, 2));
        assert_eq!(out.utilization(), Some(rat(1, 2)));
    }

    #[test]
    fn bin_reuse_at_departure_instant() {
        // Item 0 on [0,1), item 1 (full size) on [1,2). Intervals are
        // half-open, so the departure at t=1 is processed before the
        // arrival at t=1: bin 0 empties and closes, and since closed
        // bins never reopen, First Fit must open a NEW bin for item 1.
        // Two bins, usage 1 each.
        let i = inst(&[(1, 1, 0, 1), (1, 1, 1, 2)]);
        let out = Runner::new(&i).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.total_usage(), rat(2, 1));
        assert_eq!(out.max_open_bins(), 1);
    }

    #[test]
    fn capacity_forces_second_bin() {
        let i = inst(&[(2, 3, 0, 2), (2, 3, 0, 2)]);
        let out = Runner::new(&i).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.total_usage(), rat(4, 1));
        assert_eq!(out.max_open_bins(), 2);
        assert_eq!(out.bin_of(ItemId(0)), Some(BinId(0)));
        assert_eq!(out.bin_of(ItemId(1)), Some(BinId(1)));
    }

    #[test]
    fn usage_periods_track_openings_and_closings() {
        // Two items in one bin with staggered intervals, then a late
        // item reopening a fresh bin after everything closed.
        let i = inst(&[(1, 2, 0, 2), (1, 2, 1, 4), (1, 2, 6, 7)]);
        let out = Runner::new(&i).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 2);
        let b0 = &out.bins()[0];
        let b1 = &out.bins()[1];
        assert_eq!(b0.usage, Interval::new(rat(0, 1), rat(4, 1)));
        assert_eq!(b1.usage, Interval::new(rat(6, 1), rat(7, 1)));
        assert_eq!(out.total_usage(), rat(5, 1));
        // Level integral of b0: 1/2 on [0,1), 1 on [1,2), 1/2 on [2,4)
        assert_eq!(b0.level_integral, rat(1, 2) + rat(1, 1) + rat(1, 1));
        assert_eq!(b0.peak_level, rat(1, 1));
        assert_eq!(b0.mean_level(), Some(rat(5, 8)));
    }

    #[test]
    fn infeasible_placement_is_rejected() {
        struct Stubborn;
        impl PackingAlgorithm for Stubborn {
            fn name(&self) -> String {
                "stubborn".into()
            }
            fn place(&mut self, _a: &ArrivalView, bins: &BinSnapshot<'_>) -> Placement {
                match bins.open_bins().first() {
                    Some(b) => Placement::Existing(b.id), // even if it doesn't fit
                    None => Placement::OpenNew,
                }
            }
        }
        let i = inst(&[(2, 3, 0, 2), (2, 3, 0, 2)]);
        let err = Runner::new(&i).run(&mut Stubborn).unwrap_err();
        assert!(matches!(
            err,
            crate::session::SessionError::Packing(PackingError::Infeasible { bin: BinId(0), .. })
        ));
    }

    #[test]
    fn placement_into_closed_bin_is_rejected() {
        struct Ghost;
        impl PackingAlgorithm for Ghost {
            fn name(&self) -> String {
                "ghost".into()
            }
            fn place(&mut self, a: &ArrivalView, _b: &BinSnapshot<'_>) -> Placement {
                if a.item == ItemId(0) {
                    Placement::OpenNew
                } else {
                    Placement::Existing(BinId(0)) // closed by then
                }
            }
        }
        let i = inst(&[(1, 2, 0, 1), (1, 2, 2, 3)]);
        let err = Runner::new(&i).run(&mut Ghost).unwrap_err();
        assert!(matches!(
            err,
            crate::session::SessionError::Packing(PackingError::NoSuchBin(BinId(0)))
        ));
    }

    #[test]
    fn engine_rejects_time_regression() {
        let mut eng = PackingEngine::new();
        let mut ff = FirstFit::new();
        eng.arrive(&mut ff, ItemId(0), rat(1, 2), rat(5, 1))
            .unwrap();
        let err = eng
            .arrive(&mut ff, ItemId(1), rat(1, 2), rat(4, 1))
            .unwrap_err();
        assert!(matches!(err, PackingError::TimeRegression { .. }));
    }

    #[test]
    fn engine_rejects_duplicates_and_unknowns() {
        let mut eng = PackingEngine::new();
        let mut ff = FirstFit::new();
        eng.arrive(&mut ff, ItemId(0), rat(1, 2), rat(0, 1))
            .unwrap();
        assert_eq!(
            eng.arrive(&mut ff, ItemId(0), rat(1, 4), rat(1, 1)),
            Err(PackingError::DuplicateItem(ItemId(0)))
        );
        assert_eq!(
            eng.depart(&mut ff, ItemId(7), rat(1, 1)),
            Err(PackingError::UnknownItem(ItemId(7)))
        );
    }

    #[test]
    fn finish_requires_drained_engine() {
        let mut eng = PackingEngine::new();
        let mut ff = FirstFit::new();
        eng.arrive(&mut ff, ItemId(0), rat(1, 2), rat(0, 1))
            .unwrap();
        let err = eng.finish("ff").unwrap_err();
        assert_eq!(err, PackingError::ItemsStillActive(1));
    }

    #[test]
    fn max_open_bins_counts_concurrency() {
        // Three simultaneous full-size items: three bins at once.
        let i = inst(&[(1, 1, 0, 2), (1, 1, 0, 2), (1, 1, 0, 2), (1, 1, 3, 4)]);
        let out = Runner::new(&i).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.max_open_bins(), 3);
        assert_eq!(out.bins_opened(), 4);
        assert_eq!(out.total_usage(), rat(7, 1));
    }

    #[test]
    fn scheduled_replay_matches_run_packing_and_is_reusable() {
        let i = inst(&[(1, 2, 0, 2), (1, 2, 1, 4), (1, 2, 6, 7), (2, 3, 0, 2)]);
        let direct = Runner::new(&i).run(&mut FirstFit::new()).unwrap();
        let sched = event_schedule(&i);
        assert_eq!(sched.len(), 2 * i.len());
        let mut ff = FirstFit::new();
        let first = Runner::new(&i).schedule(&sched).run(&mut ff).unwrap();
        let second = Runner::new(&i).schedule(&sched).run(&mut ff).unwrap();
        assert_eq!(first, direct);
        assert_eq!(second, direct);
    }

    #[test]
    fn equal_time_burst_keeps_exact_integral() {
        // Five same-instant arrivals into one bin, staggered
        // departures; the zero-length-interval fast path in
        // advance_bin_clock must not disturb the level integral.
        let i = inst(&[
            (1, 10, 0, 1),
            (1, 10, 0, 2),
            (1, 10, 0, 2),
            (1, 10, 0, 3),
            (1, 10, 0, 3),
        ]);
        let out = Runner::new(&i).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 1);
        // Level: 1/2 on [0,1), 2/5 on [1,2), 1/5 on [2,3).
        assert_eq!(
            out.bins()[0].level_integral,
            rat(1, 2) + rat(2, 5) + rat(1, 5)
        );
        assert_eq!(out.bins()[0].peak_level, rat(1, 2));
        assert_eq!(out.total_usage(), rat(3, 1));
    }

    #[test]
    fn outcome_assignment_lookup() {
        let i = inst(&[(1, 2, 0, 2), (1, 2, 0, 2), (1, 2, 0, 2)]);
        let out = Runner::new(&i).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bin_of(ItemId(0)), Some(BinId(0)));
        assert_eq!(out.bin_of(ItemId(1)), Some(BinId(0)));
        assert_eq!(out.bin_of(ItemId(2)), Some(BinId(1)));
        assert_eq!(out.bin_of(ItemId(9)), None);
        assert_eq!(out.algorithm(), "FirstFit");
    }
}
