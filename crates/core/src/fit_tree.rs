//! `FitTree` — a sublinear placement index over open bins.
//!
//! The Any-Fit reference implementations scan every open bin per
//! arrival, which makes a replay with `B` concurrent bins cost
//! `Θ(n·B)`. This module provides the classic alternative (a
//! Johnson-style tournament tree over residual capacities): one leaf
//! per bin, internal nodes storing the **maximum residual gap** of
//! their subtree, so that the three Any-Fit selection rules become
//! `O(log B)` tree descents:
//!
//! * [`first_fit`](FitTree::first_fit) — the *earliest-opened* bin
//!   with `gap ≥ s` (leftmost feasible leaf);
//! * [`worst_fit`](FitTree::worst_fit) — the *lowest-level* feasible
//!   bin (leftmost leaf attaining the maximum gap);
//! * [`best_fit`](FitTree::best_fit) — the *highest-level* feasible
//!   bin, answered from a companion ordered set keyed `(gap, id)`
//!   (a tournament tree alone cannot answer "minimum gap ≥ s" in one
//!   descent).
//!
//! Leaves are indexed by [`BinId`] directly — bin ids are assigned in
//! opening order and never reused, so leaf order *is* opening order
//! and "leftmost" *is* "earliest opened". Closed bins leave a
//! tombstone leaf holding a sentinel gap that no query can match. The
//! leaf array doubles geometrically as ids grow, so a run that opens
//! `N` bins in total pays `O(log N)` per query and amortized `O(1)`
//! growth per opening; `N` is bounded by the number of items, and the
//! tree is `clear`ed between runs.
//!
//! The tree is generic over its gap key through [`GapKey`]. The
//! default, [`Rational`], keeps feasibility decisions bit-identical
//! to the linear scans the fast algorithms replace; the tick engine
//! (`crate::tick`) instantiates the same structure over `u64` keys —
//! scaled gaps shifted by one so that `0` can serve as the tombstone
//! — turning every comparison on the descent into a machine integer
//! compare.

use crate::bin::BinId;
use dbp_numeric::Rational;
use std::collections::BTreeSet;
use std::ops::Sub;

/// A totally ordered gap key with a sentinel strictly below every
/// value a live bin can hold, used to tombstone closed leaves.
pub trait GapKey: Copy + Ord {
    /// Sentinel for tombstoned (closed) and never-opened leaves. No
    /// feasibility query may ever pass a size at or below it.
    const CLOSED: Self;
}

/// Exact rational gaps; real gaps are `≥ 0`, so `-1` tombstones.
impl GapKey for Rational {
    const CLOSED: Rational = Rational::from_int(-1);
}

/// Scaled integer gaps for the tick engine. Stored shifted by one
/// (`key = gap + 1 ≥ 1`) so `0` is free for the tombstone; queries
/// shift the size the same way, which preserves every comparison.
impl GapKey for u64 {
    const CLOSED: u64 = 0;
}

/// Tournament (max-)tree over bin residual gaps, plus an ordered
/// `(gap, id)` set for Best-Fit queries. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FitTree<V: GapKey = Rational> {
    /// Number of leaves (a power of two, or 0 before first use).
    cap: usize,
    /// 1-based flat tree: `tree[1]` is the root, leaves occupy
    /// `tree[cap..2·cap]`; `tree[i]` is the max gap in the subtree.
    tree: Vec<V>,
    /// Live bins ordered by `(gap, id)`: Best Fit is the first entry
    /// at or above `(s, BinId(0))`.
    by_gap: BTreeSet<(V, BinId)>,
}

impl<V: GapKey> FitTree<V> {
    /// Creates an empty index.
    pub fn new() -> FitTree<V> {
        FitTree {
            cap: 0,
            tree: Vec::new(),
            by_gap: BTreeSet::new(),
        }
    }

    /// Removes every bin (start of a new run).
    pub fn clear(&mut self) {
        self.cap = 0;
        self.tree.clear();
        self.by_gap.clear();
    }

    /// Number of live (open) bins in the index.
    pub fn len(&self) -> usize {
        self.by_gap.len()
    }

    /// `true` iff no bin is live.
    pub fn is_empty(&self) -> bool {
        self.by_gap.is_empty()
    }

    /// The residual gap of a live bin (`None` if closed or unknown).
    pub fn gap(&self, id: BinId) -> Option<V> {
        let i = id.index();
        if i < self.cap && self.tree[self.cap + i] != V::CLOSED {
            Some(self.tree[self.cap + i])
        } else {
            None
        }
    }

    /// Grows the leaf array to cover `want` leaves, rebuilding the
    /// internal max nodes.
    fn grow(&mut self, want: usize) {
        let mut cap = self.cap.max(1);
        while cap < want {
            cap *= 2;
        }
        if cap == self.cap {
            return;
        }
        let mut tree = vec![V::CLOSED; 2 * cap];
        if self.cap > 0 {
            tree[cap..cap + self.cap].copy_from_slice(&self.tree[self.cap..2 * self.cap]);
        }
        for i in (1..cap).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        self.cap = cap;
        self.tree = tree;
    }

    /// Re-establishes the max invariant on the path above leaf `i`.
    fn pull_up(&mut self, mut i: usize) {
        i = (self.cap + i) / 2;
        while i >= 1 {
            let m = self.tree[2 * i].max(self.tree[2 * i + 1]);
            if self.tree[i] == m {
                break;
            }
            self.tree[i] = m;
            i /= 2;
        }
    }

    /// Registers a freshly opened bin with the given residual gap.
    ///
    /// # Panics
    /// Panics if `id` is already live (ids are never reused).
    pub fn open(&mut self, id: BinId, gap: V) {
        let i = id.index();
        self.grow(i + 1);
        assert!(
            self.tree[self.cap + i] == V::CLOSED,
            "bin {id} opened twice in FitTree"
        );
        self.tree[self.cap + i] = gap;
        self.pull_up(i);
        self.by_gap.insert((gap, id));
    }

    /// Shrinks a live bin's gap by `size` (an item was placed).
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn place(&mut self, id: BinId, size: V)
    where
        V: Sub<Output = V>,
    {
        let old = self.gap(id).expect("place() into a bin not in FitTree");
        self.set_gap(id, old - size);
    }

    /// Sets a live bin's gap to an absolute value (an item departed
    /// and the bin's level is known from the snapshot).
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn set_gap(&mut self, id: BinId, gap: V) {
        let i = id.index();
        let old = self.gap(id).expect("set_gap() on a bin not in FitTree");
        if old == gap {
            return;
        }
        self.by_gap.remove(&(old, id));
        self.by_gap.insert((gap, id));
        self.tree[self.cap + i] = gap;
        self.pull_up(i);
    }

    /// Tombstones a closed bin.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn close(&mut self, id: BinId) {
        let i = id.index();
        let old = self.gap(id).expect("close() of a bin not in FitTree");
        self.by_gap.remove(&(old, id));
        self.tree[self.cap + i] = V::CLOSED;
        self.pull_up(i);
    }

    /// First Fit: the earliest-opened live bin with `gap ≥ size`.
    pub fn first_fit(&self, size: V) -> Option<BinId> {
        self.first_fit_counted(size).0
    }

    /// [`first_fit`](Self::first_fit) plus the number of tree nodes
    /// the descent visited (root check counts as 1). The counter is a
    /// register increment, so callers that discard it (the plain
    /// query) pay nothing after inlining; profiling probes read it as
    /// the per-arrival descent depth.
    pub fn first_fit_counted(&self, size: V) -> (Option<BinId>, u32) {
        if self.cap == 0 || self.tree[1] < size {
            return (None, 1);
        }
        let mut i = 1;
        let mut depth = 1u32;
        while i < self.cap {
            i = if self.tree[2 * i] >= size {
                2 * i
            } else {
                2 * i + 1
            };
            depth += 1;
        }
        (Some(BinId((i - self.cap) as u32)), depth)
    }

    /// Best Fit: the highest-level (smallest-gap) live bin with
    /// `gap ≥ size`; ties broken toward the earliest-opened bin.
    pub fn best_fit(&self, size: V) -> Option<BinId> {
        self.by_gap
            .range((size, BinId(u32::MIN))..)
            .next()
            .map(|&(_, id)| id)
    }

    /// [`best_fit`](Self::best_fit) with a descent count of 1 (the
    /// ordered-set range lookup is one probe from the caller's view).
    pub fn best_fit_counted(&self, size: V) -> (Option<BinId>, u32) {
        (self.best_fit(size), 1)
    }

    /// Worst Fit: the lowest-level (largest-gap) live bin, provided
    /// it can take `size`; ties broken toward the earliest-opened
    /// bin (the leftmost leaf attaining the root's maximum).
    pub fn worst_fit(&self, size: V) -> Option<BinId> {
        self.worst_fit_counted(size).0
    }

    /// [`worst_fit`](Self::worst_fit) plus the descent node count
    /// (see [`first_fit_counted`](Self::first_fit_counted)).
    pub fn worst_fit_counted(&self, size: V) -> (Option<BinId>, u32) {
        if self.cap == 0 || self.tree[1] < size {
            return (None, 1);
        }
        let max = self.tree[1];
        let mut i = 1;
        let mut depth = 1u32;
        while i < self.cap {
            i = if self.tree[2 * i] == max {
                2 * i
            } else {
                2 * i + 1
            };
            depth += 1;
        }
        (Some(BinId((i - self.cap) as u32)), depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn empty_tree_answers_nothing() {
        let t = FitTree::new();
        assert!(t.is_empty());
        assert_eq!(t.first_fit(rat(1, 2)), None);
        assert_eq!(t.best_fit(rat(1, 2)), None);
        assert_eq!(t.worst_fit(rat(1, 2)), None);
        assert_eq!(t.gap(BinId(0)), None);
    }

    #[test]
    fn selection_rules_agree_with_definitions() {
        let mut t = FitTree::new();
        // Gaps: b0=0.1, b1=0.5, b2=0.4, b3=0.5.
        t.open(BinId(0), rat(1, 10));
        t.open(BinId(1), rat(1, 2));
        t.open(BinId(2), rat(2, 5));
        t.open(BinId(3), rat(1, 2));
        assert_eq!(t.len(), 4);
        // size 0.3: earliest feasible is b1; tightest feasible is b2;
        // roomiest is b1 (gap 0.5, tie with b3 → earliest).
        assert_eq!(t.first_fit(rat(3, 10)), Some(BinId(1)));
        assert_eq!(t.best_fit(rat(3, 10)), Some(BinId(2)));
        assert_eq!(t.worst_fit(rat(3, 10)), Some(BinId(1)));
        // size 0.05 fits everything: FF→b0, BF→b0 (tightest), WF→b1.
        assert_eq!(t.first_fit(rat(1, 20)), Some(BinId(0)));
        assert_eq!(t.best_fit(rat(1, 20)), Some(BinId(0)));
        assert_eq!(t.worst_fit(rat(1, 20)), Some(BinId(1)));
        // Nothing fits 0.6.
        assert_eq!(t.first_fit(rat(3, 5)), None);
        assert_eq!(t.best_fit(rat(3, 5)), None);
        assert_eq!(t.worst_fit(rat(3, 5)), None);
    }

    #[test]
    fn updates_and_closures_are_tracked() {
        let mut t = FitTree::new();
        t.open(BinId(0), rat(1, 2));
        t.open(BinId(1), rat(1, 2));
        t.place(BinId(0), rat(1, 4)); // b0 gap → 1/4
        assert_eq!(t.gap(BinId(0)), Some(rat(1, 4)));
        assert_eq!(t.first_fit(rat(1, 3)), Some(BinId(1)));
        t.set_gap(BinId(0), rat(3, 4)); // departure grew the gap
        assert_eq!(t.first_fit(rat(2, 3)), Some(BinId(0)));
        t.close(BinId(0));
        assert_eq!(t.gap(BinId(0)), None);
        assert_eq!(t.first_fit(rat(1, 8)), Some(BinId(1)));
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.first_fit(rat(1, 8)), None);
    }

    #[test]
    fn exact_fill_boundary_is_inclusive() {
        let mut t = FitTree::new();
        t.open(BinId(0), rat(1, 4));
        // gap == size is feasible (capacity is inclusive).
        assert_eq!(t.first_fit(rat(1, 4)), Some(BinId(0)));
        assert_eq!(t.best_fit(rat(1, 4)), Some(BinId(0)));
        assert_eq!(t.worst_fit(rat(1, 4)), Some(BinId(0)));
        t.place(BinId(0), rat(1, 4));
        assert_eq!(t.gap(BinId(0)), Some(Rational::ZERO));
        assert_eq!(t.first_fit(rat(1, 100)), None);
    }

    #[test]
    fn growth_preserves_existing_leaves() {
        let mut t = FitTree::new();
        for k in 0..100u32 {
            t.open(BinId(k), rat(1 + (k as i128 % 7), 10));
        }
        assert_eq!(t.len(), 100);
        // Leftmost with gap ≥ 0.7: gaps cycle 1/10..7/10, so the
        // first leaf holding 7/10 is id 6.
        assert_eq!(t.first_fit(rat(7, 10)), Some(BinId(6)));
        // Close the first fifty; queries shift right.
        for k in 0..50u32 {
            t.close(BinId(k));
        }
        assert_eq!(t.first_fit(rat(7, 10)), Some(BinId(55)));
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn counted_queries_report_descent_depth() {
        let mut t = FitTree::new();
        for k in 0..5u32 {
            t.open(BinId(k), rat(1, 2));
        }
        // cap grew to 8: a full descent visits root + 3 levels.
        let (hit, depth) = t.first_fit_counted(rat(1, 4));
        assert_eq!(hit, Some(BinId(0)));
        assert_eq!(depth, 4);
        assert_eq!(t.worst_fit_counted(rat(1, 4)), (Some(BinId(0)), 4));
        assert_eq!(t.best_fit_counted(rat(1, 4)), (Some(BinId(0)), 1));
        // Infeasible queries stop at the root.
        assert_eq!(t.first_fit_counted(rat(3, 4)), (None, 1));
        assert_eq!(t.worst_fit_counted(rat(3, 4)), (None, 1));
    }

    #[test]
    #[should_panic(expected = "opened twice")]
    fn double_open_panics() {
        let mut t = FitTree::new();
        t.open(BinId(0), rat(1, 2));
        t.open(BinId(0), rat(1, 2));
    }

    /// The `u64` instantiation (shifted keys, tombstone `0`) answers
    /// exactly like the `Rational` tree over the same scaled gaps.
    #[test]
    fn integer_keys_mirror_rational_keys() {
        const SCALE: i128 = 20;
        let gaps: [(u32, i128); 4] = [(0, 2), (1, 10), (2, 8), (3, 10)];
        let mut rt: FitTree<Rational> = FitTree::new();
        let mut it: FitTree<u64> = FitTree::new();
        for &(id, g) in &gaps {
            rt.open(BinId(id), rat(g, SCALE));
            it.open(BinId(id), g as u64 + 1);
        }
        for s in 1..=SCALE {
            let size = rat(s, SCALE);
            assert_eq!(rt.first_fit(size), it.first_fit(s as u64 + 1));
            assert_eq!(rt.best_fit(size), it.best_fit(s as u64 + 1));
            assert_eq!(rt.worst_fit(size), it.worst_fit(s as u64 + 1));
        }
        // Churn: place, depart, close — shifted keys stay aligned.
        rt.place(BinId(1), rat(4, SCALE));
        it.place(BinId(1), 4);
        assert_eq!(rt.gap(BinId(1)), Some(rat(6, SCALE)));
        assert_eq!(it.gap(BinId(1)), Some(7));
        rt.set_gap(BinId(0), rat(5, SCALE));
        it.set_gap(BinId(0), 6);
        rt.close(BinId(3));
        it.close(BinId(3));
        for s in 1..=SCALE {
            let size = rat(s, SCALE);
            assert_eq!(rt.first_fit(size), it.first_fit(s as u64 + 1));
            assert_eq!(rt.best_fit(size), it.best_fit(s as u64 + 1));
            assert_eq!(rt.worst_fit(size), it.worst_fit(s as u64 + 1));
        }
        assert_eq!(it.len(), 3);
    }

    /// Cross-check every query against a brute-force scan on a
    /// deterministic pseudo-random churn sequence.
    #[test]
    fn matches_linear_scan_under_churn() {
        let mut t = FitTree::new();
        let mut live: Vec<(BinId, Rational)> = Vec::new();
        let mut next = 0u32;
        let mut state = 0x9E37u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i128
        };
        for step in 0..600 {
            match rng() % 3 {
                0 => {
                    let gap = rat(rng() % 100, 100).abs();
                    t.open(BinId(next), gap);
                    live.push((BinId(next), gap));
                    next += 1;
                }
                1 if !live.is_empty() => {
                    let k = (rng().unsigned_abs() as usize) % live.len();
                    let (id, _) = live.remove(k);
                    t.close(id);
                }
                _ if !live.is_empty() => {
                    let k = (rng().unsigned_abs() as usize) % live.len();
                    let gap = rat(rng() % 100, 100).abs();
                    live[k].1 = gap;
                    t.set_gap(live[k].0, gap);
                }
                _ => {}
            }
            let s = rat(1 + rng().unsigned_abs() as i128 % 99, 100);
            let ff = live
                .iter()
                .filter(|(_, g)| *g >= s)
                .min_by_key(|(id, _)| *id)
                .map(|&(id, _)| id);
            let bf = live
                .iter()
                .filter(|(_, g)| *g >= s)
                .min_by_key(|&&(id, g)| (g, id))
                .map(|&(id, _)| id);
            let wf = live
                .iter()
                .filter(|(_, g)| *g >= s)
                .max_by(|a, b| (a.1, std::cmp::Reverse(a.0)).cmp(&(b.1, std::cmp::Reverse(b.0))))
                .map(|&(id, _)| id);
            assert_eq!(t.first_fit(s), ff, "first_fit diverged at step {step}");
            assert_eq!(t.best_fit(s), bf, "best_fit diverged at step {step}");
            assert_eq!(t.worst_fit(s), wf, "worst_fit diverged at step {step}");
            assert_eq!(t.len(), live.len());
        }
    }
}
