//! Thin binary wrapper around the testable CLI library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mindbp_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
