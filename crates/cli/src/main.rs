//! Thin binary wrapper around the testable CLI library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Live progress (report lines, skip notices, watchdog alerts)
    // goes to stderr; only the final summary lands on stdout.
    match mindbp_cli::run_to(&args, &mut std::io::stderr()) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
