#![warn(missing_docs)]

//! `mindbp` — the command-line face of the workspace.
//!
//! ```text
//! mindbp generate --family random --n 100 --mu 4 --seed 7 --out trace.json
//! mindbp pack     --trace trace.json --algo firstfit --billing hourly
//! mindbp pack     --trace trace.json --events run.jsonl --metrics run.json
//! mindbp stats    --trace run.jsonl
//! mindbp compare  --trace trace.json
//! mindbp certify  --trace trace.json
//! mindbp opt      --trace trace.json
//! mindbp render   --trace trace.json --algo firstfit
//! ```
//!
//! The library entry point [`run`] takes the argument vector and
//! returns the rendered output (or a typed error), so the whole CLI
//! is unit-testable without spawning processes; `main.rs` is a thin
//! printer. [`run_to`] additionally takes a *progress* writer —
//! live report lines, skip/reject notices, and watchdog alerts go
//! there (the binary wires it to stderr), while final summaries
//! stay on stdout so pipelines stay clean.

use dbp_analysis::{certify_first_fit, measure_ratio, TheoremChain};
use dbp_cloudsim::{simulate, BillingModel};
use dbp_core::{
    Backend, BestFit, BestFitFast, CompiledInstance, DepartureAlignedFit, FanOut, FirstFit,
    FirstFitFast, HybridFirstFit, Instance, LastFit, NextFit, PackingAlgorithm, Runner, TickPolicy,
    WorstFit, WorstFitFast,
};
use dbp_numeric::{rat, Rational};
use dbp_obs::{
    chrome_trace, chrome_trace_with_spans, parse_jsonl, set_ratio_gauge, telemetry_registry,
    EngineMetrics, MetricsRegistry, MetricsServer, Profiler, StepSeries, TraceRecorder, Watchdog,
};
use dbp_workloads::adversarial::{
    any_fit_ladder, best_fit_scatter, next_fit_pairs, universal_mu_pairs,
};
use dbp_workloads::{load_instance, save_instance, GamingConfig, RandomWorkload, Trace};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// CLI failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed `--key value` options.
struct Opts {
    map: BTreeMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, CliError> {
        let mut map = BTreeMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(err(format!("expected --option, got `{key}`")));
            };
            let value = it
                .next()
                .ok_or_else(|| err(format!("--{name} needs a value")))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Opts { map })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| err(format!("missing required --{name}")))
    }

    fn u32_or(&self, name: &str, default: u32) -> Result<u32, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: `{v}` is not an integer"))),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: `{v}` is not an integer"))),
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
mindbp — MinUsageTime Dynamic Bin Packing toolkit

USAGE:
  mindbp <command> [--option value ...]

COMMANDS:
  generate  create a workload trace
            --family random|gaming|nextfit|universal|ladder|scatter
            --out FILE [--n N] [--mu M] [--seed S] [--k K]
  pack      dispatch a trace with one algorithm
            --trace FILE [--algo NAME] [--billing hourly|minute|continuous]
            [--events FILE]   write a JSONL engine-event trace
            [--metrics FILE]  write a metrics-registry JSON snapshot
            [--chrome FILE]   write a Chrome trace-event file (Perfetto)
  stats     summarize a JSONL event trace written by `pack --events`
            --trace FILE [--max-rows N]
  compare   dispatch a trace with every algorithm, ranked by cost
            --trace FILE [--billing ...]
  certify   run the IPDPS'16 §IV–§VII certification under First Fit
            --trace FILE
  chain     print the Theorem 1 inequality chain, numerically
            instantiated on the trace
            --trace FILE
  adaptive  play the keep-smallest adversary game against an algorithm
            --algo NAME [--k K] [--mu M]
  opt       compute the exact repacking adversary OPT_total via the
            incremental warm-started branch-and-bound sweep
            --trace FILE [--max-exact N]  exact-solve cap (default 200)
            [--budget N]  search-node budget per interval
                          (default 200000; exhaustion → bracket)
  tick      compile a trace onto its integer tick grid and replay it
            on the integer engine (bit-identical to the exact engine,
            Rational fallback when the grid overflows)
            --trace FILE [--algo firstfit|bestfit|worstfit]
            [--verify true|false]
  profile   replay a trace under the in-engine profiler: phase-share
            table (where the cycles go), per-arrival scan/descent/gcd
            work, flamegraph and Chrome exports
            --trace FILE [--algo NAME] [--backend auto|exact|tick]
            [--burst N]       profile a built-in equal-tick burst
                              workload instead of a trace (32 waves
                              of N simultaneous arrivals, waves
                              overlapping so departure and arrival
                              bursts share ticks; --trace not needed)
            [--sample N]      clock-time every N-th event (default 1)
            [--folded FILE]   write inferno folded stacks
                              (flamegraph.pl / inferno-flamegraph)
            [--chrome FILE]   write a Chrome trace with profiler spans
                              (attaches a recorder: exact engine)
            [--metrics FILE]  write the profile metrics registry JSON
  stream    drive a live streaming session from JSONL events
            ({\"arrive\":{\"id\":..,\"size\":..,\"time\":..}} /
             {\"depart\":{\"id\":..,\"time\":..}}, one per line)
            [--input FILE]   read events from FILE (default: stdin)
            [--algo NAME] [--backend auto|exact|tick] [--grid T,S]
            [--shards N]     shard by item id across N sessions
            [--strict true|false]  abort vs skip bad lines (default skip)
            [--report-every N]     live metrics every N events (stderr)
            [--checkpoint FILE]    save a resumable snapshot if the
                                   stream ends with items still active
            [--resume FILE]        continue from a saved snapshot
            [--watchdog R|off]     alert when usage/max(vol,span)
                                   exceeds R (a/b or integer; default
                                   auto: estimated µ + 4, Theorem 1)
            [--prom-out FILE]      write a final OpenMetrics page
            [--prom-listen ADDR]   serve live OpenMetrics over HTTP
                                   (e.g. 127.0.0.1:9184) while the
                                   stream runs
            [--prom-linger-ms N]   keep the endpoint up N ms after
                                   the stream ends (default 0)
  serve     run the multi-tenant allocation daemon (dbp-server):
            length-prefixed JSONL frames, synchronous placement,
            journal-backed crash recovery, OpenMetrics exposition
            [--listen ADDR]      wire address (default 127.0.0.1:9500)
            [--metrics ADDR]     serve /metrics on ADDR (off by default)
            [--journal-dir DIR]  journal every tenant for crash
                                 recovery; restart resumes verbatim
            [--token SECRET]     require one shared auth token
            [--max-bins N] [--max-items N] [--max-eps N]
                                 per-tenant quotas (default unlimited)
            [--slow-ms N]        record placements slower than N ms in
                                 the slow-request ring (0 = all)
            [--trace-out FILE]   dump the slow-request ring on shutdown
                                 as JSONL at FILE plus a Chrome trace
                                 sibling (.chrome.json; implies the ring)
            stops on a wire `shutdown` frame
  render    ASCII timeline of a packing
            --trace FILE [--algo NAME] [--width W]
  help      this text

ALGORITHMS: firstfit bestfit worstfit lastfit nextfit hybrid harmonic
            aligned (clairvoyant — pack/render only)
            firstfit-fast bestfit-fast worstfit-fast (FitTree-indexed,
            O(log B) per arrival, identical placements)
";

fn make_algo_for(name: &str, instance: &Instance) -> Result<Box<dyn PackingAlgorithm>, CliError> {
    if matches!(name, "aligned" | "clairvoyant") {
        return Ok(Box::new(DepartureAlignedFit::new(instance)));
    }
    make_algo(name)
}

fn make_algo(name: &str) -> Result<Box<dyn PackingAlgorithm>, CliError> {
    Ok(match name {
        "firstfit" | "ff" => Box::new(FirstFit::new()),
        "bestfit" | "bf" => Box::new(BestFit::new()),
        "worstfit" | "wf" => Box::new(WorstFit::new()),
        "firstfit-fast" | "fff" => Box::new(FirstFitFast::new()),
        "bestfit-fast" | "bff" => Box::new(BestFitFast::new()),
        "worstfit-fast" | "wff" => Box::new(WorstFitFast::new()),
        "lastfit" | "lf" => Box::new(LastFit::new()),
        "nextfit" | "nf" => Box::new(NextFit::new()),
        "hybrid" | "hff" => Box::new(HybridFirstFit::classic()),
        "harmonic" => Box::new(HybridFirstFit::harmonic(4)),
        other => return Err(err(format!("unknown algorithm `{other}`"))),
    })
}

fn make_billing(name: &str) -> Result<BillingModel, CliError> {
    Ok(match name {
        "continuous" => BillingModel::Continuous,
        "minute" => BillingModel::per_minute(),
        "hourly" => BillingModel::hourly(),
        other => return Err(err(format!("unknown billing model `{other}`"))),
    })
}

fn load(opts: &Opts) -> Result<(Trace, Instance), CliError> {
    let path = opts.required("trace")?;
    load_instance(Path::new(path)).map_err(|e| err(format!("cannot load `{path}`: {e}")))
}

/// Executes an argument vector (without the program name), returning
/// the output text. Progress lines are discarded; use [`run_to`] to
/// capture them.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_to(args, &mut std::io::sink())
}

/// [`run`] with an explicit progress writer. Live report lines,
/// per-line skip/reject notices, and watchdog alerts are written to
/// `progress` as they happen; the returned string holds the final
/// summary. The `mindbp` binary passes stderr, so `--report-every`
/// output never corrupts piped stdout.
pub fn run_to(args: &[String], progress: &mut dyn std::io::Write) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(USAGE.to_string());
    };
    let opts = Opts::parse(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "generate" => cmd_generate(&opts),
        "pack" => cmd_pack(&opts),
        "stats" => cmd_stats(&opts),
        "compare" => cmd_compare(&opts),
        "certify" => cmd_certify(&opts),
        "chain" => cmd_chain(&opts),
        "adaptive" => cmd_adaptive(&opts),
        "opt" => cmd_opt(&opts),
        "tick" => cmd_tick(&opts),
        "profile" => cmd_profile(&opts),
        "stream" => cmd_stream(&opts, progress),
        "serve" => cmd_serve(&opts, progress),
        "render" => cmd_render(&opts),
        other => Err(err(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn cmd_generate(opts: &Opts) -> Result<String, CliError> {
    let family = opts.required("family")?;
    let out = opts.required("out")?;
    let n = opts.u32_or("n", 100)?;
    let mu = opts.u32_or("mu", 4)?;
    let k = opts.u32_or("k", 8)?;
    let seed = opts.u64_or("seed", 0)?;

    let (instance, description) = match family {
        "random" => (
            RandomWorkload::with_mu(n as usize, Rational::from_int(mu as i128), seed).generate(),
            format!("random workload n={n} µ≤{mu} seed={seed}"),
        ),
        "gaming" => (
            GamingConfig {
                seed,
                peak_sessions_per_hour: n.max(1),
                ..Default::default()
            }
            .generate()
            .instance,
            format!("synthetic cloud-gaming day, peak {n}/h, seed={seed}"),
        ),
        "nextfit" => (
            next_fit_pairs(n.max(3), mu).0,
            format!("§VIII Next Fit pair gadget n={n} µ={mu}"),
        ),
        "universal" => (
            universal_mu_pairs(k, mu, k.max(4)).0,
            format!("universal µ pair family k={k} µ={mu}"),
        ),
        "ladder" => (
            any_fit_ladder(k.max(2), mu).0,
            format!("Any-Fit gap-ladder n={k} µ={mu}"),
        ),
        "scatter" => (
            best_fit_scatter(k.max(2), mu.max(2)).0,
            format!("Best Fit scatter gadget k={k} µ={mu}"),
        ),
        other => return Err(err(format!("unknown family `{other}`"))),
    };

    let trace = Trace::from_instance(family, &description, &instance)
        .with_meta("seed", seed)
        .with_meta("family", family);
    save_instance(Path::new(out), &trace).map_err(|e| err(format!("cannot write `{out}`: {e}")))?;
    Ok(format!(
        "wrote {} ({} items, µ = {}) to {out}\n",
        family,
        instance.len(),
        instance
            .mu()
            .map(|m| m.to_string())
            .unwrap_or_else(|| "-".into()),
    ))
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|e| err(format!("cannot write `{path}`: {e}")))
}

fn cmd_pack(opts: &Opts) -> Result<String, CliError> {
    let (_, instance) = load(opts)?;
    let mut algo = make_algo_for(opts.get("algo").unwrap_or("firstfit"), &instance)?;
    let billing = make_billing(opts.get("billing").unwrap_or("continuous"))?;

    // `--events`/`--metrics`/`--chrome` attach observers to the run;
    // without them the unobserved (no-op observer) path is used.
    let events_out = opts.get("events");
    let metrics_out = opts.get("metrics");
    let chrome_out = opts.get("chrome");
    let observing = events_out.is_some() || metrics_out.is_some() || chrome_out.is_some();

    let mut recorder = TraceRecorder::new();
    let mut metrics = EngineMetrics::new();
    let mut fan = FanOut::new(vec![&mut recorder, &mut metrics]);
    let mut sim = simulate(&instance).billing(billing);
    if observing {
        sim = sim.observer(&mut fan);
    }
    let report = sim
        .run(algo.as_mut())
        .map_err(|e| err(format!("packing failed: {e}")))?;

    let mut out = String::new();
    out.push_str(&format!(
        "{}: {} jobs → {} servers (peak {}), usage {}, billed {} [{}]\n",
        report.algorithm,
        report.jobs,
        report.servers_used,
        report.peak_servers,
        report.usage_time,
        report.billed_time,
        report.billing,
    ));
    if let Some(u) = report.utilization {
        out.push_str(&format!("utilization: {:.3}\n", u.to_f64()));
    }

    if let Some(path) = events_out {
        write_file(path, &recorder.to_jsonl())?;
        out.push_str(&format!(
            "events: {} trace events → {path}\n",
            recorder.events().len()
        ));
    }
    if let Some(path) = metrics_out {
        write_file(path, &metrics.registry().to_json_pretty())?;
        out.push_str(&format!("metrics: registry snapshot → {path}\n"));
    }
    if let Some(path) = chrome_out {
        let doc = serde_json::to_string(&chrome_trace(recorder.events()))
            .map_err(|e| err(format!("chrome export failed: {e}")))?;
        write_file(path, &doc)?;
        out.push_str(&format!("chrome: trace-event file → {path}\n"));
    }
    Ok(out)
}

fn cmd_stats(opts: &Opts) -> Result<String, CliError> {
    let path = opts.required("trace")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read `{path}`: {e}")))?;
    let events = parse_jsonl(&text).map_err(|e| err(format!("`{path}`: {e}")))?;
    if events.is_empty() {
        return Ok("empty trace: no events\n".into());
    }
    // StepSeries integrates over time and requires non-decreasing
    // timestamps; reject a reordered/tampered log up front rather
    // than panicking inside the integrator.
    let mut last: Option<Rational> = None;
    for (i, ev) in events.iter().enumerate() {
        if let Some(t) = ev.time() {
            if last.is_some_and(|l| t < l) {
                return Err(err(format!(
                    "`{path}`: corrupt trace — time goes backwards at event {}",
                    i + 1
                )));
            }
            last = Some(t);
        }
    }

    let mut out = String::new();
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
    out.push_str(&format!(
        "{path}: {} events ({} arrivals, {} placements, {} departures, {} bins)\n",
        events.len(),
        count("arrival"),
        count("placement"),
        count("departure"),
        count("bin_opened"),
    ));

    match dbp_obs::replay(&events) {
        Ok(s) => out.push_str(&format!(
            "replay: OK — usage {}, peak {} open, {} bins opened\n",
            s.total_usage, s.max_open_bins, s.bins_opened,
        )),
        Err(e) => out.push_str(&format!("replay: FAILED — {e}\n")),
    }

    let series = StepSeries::from_events(&events);
    if let Some(s) = series.summary() {
        out.push_str(&format!(
            "span {}, avg open {}, peak level {}",
            s.span,
            s.avg_open_bins
                .map(|a| format!("{:.3}", a.to_f64()))
                .unwrap_or_else(|| "-".into()),
            s.peak_total_level,
        ));
        if let Some(u) = s.utilization {
            out.push_str(&format!(", utilization {:.3}", u.to_f64()));
        }
        out.push('\n');
    }

    // Step time-series table, capped at --max-rows samples.
    let max_rows = opts.u32_or("max-rows", 24)? as usize;
    let points = series.points();
    out.push_str(&format!(
        "\n{:>12} {:>6} {:>12} {:>8}\n",
        "t", "open", "level", "util"
    ));
    let step = points.len().div_ceil(max_rows.max(1));
    for p in points.iter().step_by(step.max(1)) {
        let util = if p.open_bins == 0 {
            "-".to_string()
        } else {
            format!("{:.3}", p.total_level.to_f64() / p.open_bins as f64)
        };
        out.push_str(&format!(
            "{:>12} {:>6} {:>12} {:>8}\n",
            p.t.to_string(),
            p.open_bins,
            p.total_level.to_string(),
            util,
        ));
    }
    if step > 1 {
        out.push_str(&format!(
            "({} of {} samples shown; raise --max-rows for more)\n",
            points.iter().step_by(step).count(),
            points.len(),
        ));
    }
    Ok(out)
}

fn cmd_compare(opts: &Opts) -> Result<String, CliError> {
    let (_, instance) = load(opts)?;
    let billing = make_billing(opts.get("billing").unwrap_or("continuous"))?;
    let names = [
        "firstfit",
        "firstfit-fast",
        "bestfit",
        "worstfit",
        "lastfit",
        "nextfit",
        "hybrid",
    ];
    let mut rows: Vec<(String, Rational, Rational, usize)> = Vec::new();
    for name in names {
        let mut algo = make_algo(name)?;
        let rep = simulate(&instance)
            .billing(billing)
            .run(algo.as_mut())
            .map_err(|e| err(format!("{name} failed: {e}")))?;
        rows.push((
            rep.algorithm.clone(),
            rep.billed_time,
            rep.usage_time,
            rep.servers_used,
        ));
    }
    rows.sort_by_key(|a| a.1);
    let mut out = format!(
        "{:<22} {:>12} {:>12} {:>8}\n",
        "algorithm", "billed", "usage", "servers"
    );
    for (name, billed, usage, servers) in rows {
        out.push_str(&format!(
            "{name:<22} {:>12} {:>12} {servers:>8}\n",
            billed.to_string(),
            usage.to_string(),
        ));
    }
    Ok(out)
}

fn cmd_certify(opts: &Opts) -> Result<String, CliError> {
    let (_, instance) = load(opts)?;
    if instance.is_empty() {
        return Ok("empty instance: nothing to certify\n".into());
    }
    let report = certify_first_fit(&instance);
    let mut out = report.to_string();
    out.push_str(if report.all_passed() {
        "\nall certificates hold.\n"
    } else {
        "\nCERTIFICATE FAILURES — see above.\n"
    });
    Ok(out)
}

fn cmd_chain(opts: &Opts) -> Result<String, CliError> {
    let (_, instance) = load(opts)?;
    if instance.is_empty() {
        return Ok("empty instance: nothing to evaluate\n".into());
    }
    let chain = TheoremChain::compute(&instance);
    let mut out = chain.to_string();
    out.push_str(if chain.holds() {
        "every step holds.\n"
    } else {
        "STEP FAILURES — see above.\n"
    });
    Ok(out)
}

fn cmd_adaptive(opts: &Opts) -> Result<String, CliError> {
    let name = opts.get("algo").unwrap_or("firstfit");
    let k = opts.u32_or("k", 10)?;
    let mu = opts.u32_or("mu", 6)?;
    let mut algo = make_algo(name)?;
    let mut adversary = dbp_workloads::adaptive::KeepSmallestAdversary::new(k, mu);
    let result = dbp_workloads::adaptive::play(&mut adversary, algo.as_mut(), 1_000_000)
        .map_err(|e| err(format!("game failed: {e}")))?;
    let rerun = Runner::new(&result.instance)
        .run(algo.as_mut())
        .map_err(|e| err(format!("replay failed: {e}")))?;
    let rep = measure_ratio(&result.instance, &rerun);
    let mut out = format!(
        "adversary keep-smallest (k = {k}, µ = {mu}) vs {}:\n",
        rerun.algorithm()
    );
    out.push_str(&format!(
        "  bins opened: {}, cost: {}\n",
        result.bins_opened, result.algorithm_cost
    ));
    match rep.exact_ratio().or(rep.ratio_upper) {
        Some(r) => out.push_str(&format!(
            "  ratio vs exact OPT: {} ≈ {:.3}\n",
            r,
            r.to_f64()
        )),
        None => out.push_str("  (adversary cost out of exact reach)\n"),
    }
    Ok(out)
}

fn cmd_opt(opts: &Opts) -> Result<String, CliError> {
    let (_, instance) = load(opts)?;
    let config = dbp_analysis::optimal::OptConfig {
        max_exact_items: opts.u32_or("max-exact", 200)? as usize,
        node_budget: opts.u64_or("budget", 200_000)?,
    };
    let solver = dbp_analysis::ExactBinPacking::new();
    let profile = dbp_analysis::optimal::opt_profile(&instance, &solver, config);
    let opt = {
        use dbp_numeric::Rational;
        let mut lower = Rational::ZERO;
        let mut upper = Rational::ZERO;
        for seg in &profile.segments {
            let len = seg.window.len();
            lower += Rational::from_int(seg.lower as i128) * len;
            upper += Rational::from_int(seg.upper as i128) * len;
        }
        dbp_analysis::OptTotal { lower, upper }
    };
    let ff = Runner::new(&instance)
        .run(&mut FirstFit::new())
        .map_err(|e| err(format!("packing failed: {e}")))?;
    let rep = measure_ratio(&instance, &ff);
    let mut out = String::new();
    match opt.exact() {
        Some(v) => out.push_str(&format!("OPT_total = {v} (exact)\n")),
        None => out.push_str(&format!(
            "OPT_total ∈ [{}, {}] (bracket)\n",
            opt.lower, opt.upper
        )),
    }
    out.push_str(&format!(
        "intervals = {} ({} exact, peak OPT ∈ [{}, {}], memo entries: {})\n",
        profile.segments.len(),
        profile.segments.iter().filter(|s| s.is_exact()).count(),
        profile.peak_lower(),
        profile.peak_upper(),
        solver.memo_len(),
    ));
    out.push_str(&format!("FirstFit  = {}\n", ff.total_usage()));
    if let Some(r) = rep.exact_ratio() {
        out.push_str(&format!(
            "ratio     = {} ≤ µ+4 = {}\n",
            r,
            rep.theorem1_bound()
                .map(|b| b.to_string())
                .unwrap_or_default()
        ));
    }
    Ok(out)
}

fn cmd_tick(opts: &Opts) -> Result<String, CliError> {
    let (_, instance) = load(opts)?;
    let name = opts.get("algo").unwrap_or("firstfit");
    let policy = match name {
        "firstfit" | "ff" => TickPolicy::FirstFit,
        "bestfit" | "bf" => TickPolicy::BestFit,
        "worstfit" | "wf" => TickPolicy::WorstFit,
        other => {
            return Err(err(format!(
                "the tick engine supports firstfit|bestfit|worstfit, got `{other}`"
            )))
        }
    };
    let verify = opts.get("verify").unwrap_or("true") == "true";

    let mut out = String::new();
    let outcome = match CompiledInstance::compile(&instance) {
        Ok(compiled) => {
            out.push_str(&format!(
                "compiled: {} items → {} events on the tick grid \
                 (origin {}, time ×{}, size ×{})\n",
                compiled.items().len(),
                compiled.schedule().len(),
                compiled.origin(),
                compiled.time_scale(),
                compiled.size_scale(),
            ));
            let outcome = compiled
                .run(policy)
                .map_err(|e| err(format!("tick replay failed: {e}")))?;
            if verify {
                // Replay the same stream on the exact engine and
                // insist on bit-identical books.
                let mut linear: Box<dyn PackingAlgorithm> = match policy {
                    TickPolicy::FirstFit => Box::new(FirstFit::new()),
                    TickPolicy::BestFit => Box::new(BestFit::new()),
                    TickPolicy::WorstFit => Box::new(WorstFit::new()),
                };
                let exact = Runner::new(&instance)
                    .run(linear.as_mut())
                    .map_err(|e| err(format!("verification replay failed: {e}")))?;
                if outcome == exact {
                    out.push_str("verify: OK — bit-identical to the exact Rational engine\n");
                } else {
                    return Err(err(
                        "verify: MISMATCH — tick outcome diverged from the exact engine"
                            .to_string(),
                    ));
                }
            }
            outcome
        }
        Err(e) => {
            out.push_str(&format!(
                "compile: {e} — falling back to the exact Rational engine\n"
            ));
            let mut linear: Box<dyn PackingAlgorithm> = match policy {
                TickPolicy::FirstFit => Box::new(FirstFit::new()),
                TickPolicy::BestFit => Box::new(BestFit::new()),
                TickPolicy::WorstFit => Box::new(WorstFit::new()),
            };
            Runner::new(&instance)
                .run(linear.as_mut())
                .map_err(|e| err(format!("packing failed: {e}")))?
        }
    };
    out.push_str(&format!(
        "{}: {} items → {} bins (peak {} open), usage {}\n",
        outcome.algorithm(),
        instance.len(),
        outcome.bins_opened(),
        outcome.max_open_bins(),
        outcome.total_usage(),
    ));
    Ok(out)
}

/// Synthetic workload for `profile --burst N`: 32 waves of `n`
/// arrivals sharing one integer instant, every wave departing —
/// again simultaneously — three instants later, so wave `w + 3`'s
/// arrival burst lands on the same tick as wave `w`'s departure
/// burst. This is exactly the shape the tick engine's equal-tick
/// burst batching targets, with the staircase size mix (4 of 5 items
/// above half capacity) forcing bin churn inside each burst.
fn burst_workload(n: usize) -> Result<Instance, CliError> {
    const WAVES: i128 = 32;
    let mut b = Instance::builder();
    for wave in 0..WAVES {
        for j in 0..n as i128 {
            let size = if j % 5 == 0 {
                rat(11 + (j * 13) % 23, 100)
            } else {
                rat(51 + (j * 7) % 49, 100)
            };
            b = b.item(size, rat(wave, 1), rat(wave + 3, 1));
        }
    }
    b.build()
        .map_err(|e| err(format!("burst workload invalid: {e}")))
}

fn cmd_profile(opts: &Opts) -> Result<String, CliError> {
    let burst = opts.u64_or("burst", 0)?;
    let (burst_note, instance) = if burst > 0 {
        let inst = burst_workload(burst as usize)?;
        let note = format!("workload: synthetic equal-tick bursts (32 waves x {burst} arrivals)\n");
        (note, inst)
    } else {
        (String::new(), load(opts)?.1)
    };
    let name = opts.get("algo").unwrap_or("firstfit");
    let mut algo = make_algo_for(name, &instance)?;
    let backend = match opts.get("backend").unwrap_or("auto") {
        "auto" => Backend::Auto,
        "exact" => Backend::Exact,
        "tick" => Backend::Tick,
        other => return Err(err(format!("unknown backend `{other}`"))),
    };
    let sample = opts.u64_or("sample", 1)?;
    let folded_out = opts.get("folded");
    let chrome_out = opts.get("chrome");
    let metrics_out = opts.get("metrics");

    let mut prof = Profiler::new().with_sampling(sample);
    let mut recorder = TraceRecorder::new();
    let mut runner = Runner::new(&instance).backend(backend).probe(&mut prof);
    // The Chrome export wants the bin tracks alongside the profiler
    // spans, and recording those takes an observer — which forces
    // the exact engine (and is rejected by --backend tick).
    if chrome_out.is_some() {
        runner = runner.observer(&mut recorder);
    }
    let outcome = runner
        .run(algo.as_mut())
        .map_err(|e| err(format!("profiled run failed: {e}")))?;

    let mut out = burst_note;
    out.push_str(&format!(
        "{}: {} items → {} bins (peak {} open), usage {}\n",
        outcome.algorithm(),
        instance.len(),
        outcome.bins_opened(),
        outcome.max_open_bins(),
        outcome.total_usage(),
    ));
    out.push_str(&prof.report());

    if let Some(path) = folded_out {
        write_file(path, &prof.folded())?;
        out.push_str(&format!("folded: flamegraph stacks → {path}\n"));
    }
    if let Some(path) = chrome_out {
        let doc = chrome_trace_with_spans(recorder.events(), prof.chrome_events());
        let text =
            serde_json::to_string(&doc).map_err(|e| err(format!("chrome export failed: {e}")))?;
        write_file(path, &text)?;
        out.push_str(&format!("chrome: trace with profiler spans → {path}\n"));
    }
    if let Some(path) = metrics_out {
        write_file(path, &prof.to_registry().to_json_pretty())?;
        out.push_str(&format!("metrics: profile registry → {path}\n"));
    }
    Ok(out)
}

/// Parses one JSONL line into a stream event via the shared wire
/// schema (`dbp-proto`): versioned `{"v":1,...}` lines and legacy
/// untagged ones both parse. Returns `None` for blank lines and
/// comments.
fn parse_stream_line(line: &str) -> Option<Result<StreamCliEvent, String>> {
    dbp_proto::parse_event_line(line)
}

type StreamCliEvent = dbp_core::session::Event;

/// Parses `a/b` or a bare integer into an exact [`Rational`].
fn parse_rational(spec: &str) -> Result<Rational, CliError> {
    let (num, den) = match spec.split_once('/') {
        Some((n, d)) => (n, d),
        None => (spec, "1"),
    };
    let n: i128 = num
        .trim()
        .parse()
        .map_err(|_| err(format!("`{spec}` is not a rational (a/b or integer)")))?;
    let d: i128 = den
        .trim()
        .parse()
        .ok()
        .filter(|&d| d > 0)
        .ok_or_else(|| err(format!("`{spec}` needs a positive denominator")))?;
    Ok(Rational::new(n, d))
}

/// The stream command's telemetry fan-out: an optional live scrape
/// endpoint, an optional final OpenMetrics file, and a lower-bound
/// watchdog. All three feed off the session's stream telemetry.
struct StreamTelemetry {
    watchdog: Option<Watchdog>,
    server: Option<MetricsServer>,
    prom_out: Option<String>,
    linger_ms: u64,
}

impl StreamTelemetry {
    fn from_opts(opts: &Opts, progress: &mut dyn std::io::Write) -> Result<Self, CliError> {
        let watchdog = match opts.get("watchdog") {
            None => Some(Watchdog::new()),
            Some("off") => None,
            Some(spec) => Some(Watchdog::with_threshold(
                parse_rational(spec).map_err(|e| err(format!("--watchdog: {e}")))?,
            )),
        };
        let server = match opts.get("prom-listen") {
            None => None,
            Some(addr) => {
                let server = MetricsServer::start(addr)
                    .map_err(|e| err(format!("cannot serve metrics on `{addr}`: {e}")))?;
                let _ = writeln!(
                    progress,
                    "metrics: serving OpenMetrics on http://{}/metrics",
                    server.local_addr()
                );
                Some(server)
            }
        };
        Ok(StreamTelemetry {
            watchdog,
            server,
            prom_out: opts.get("prom-out").map(str::to_string),
            linger_ms: opts.u64_or("prom-linger-ms", 0)?,
        })
    }

    /// Whether per-event metric checks are worth computing at all.
    fn live(&self) -> bool {
        self.watchdog.is_some() || self.server.is_some()
    }

    /// Whether a scrape endpoint is up (publishing has a consumer).
    fn serving(&self) -> bool {
        self.server.is_some()
    }

    /// Runs the watchdog against the current stream metrics, writing
    /// any alert to the progress stream as it fires.
    fn watch(
        &mut self,
        metrics: &dbp_core::session::SessionMetrics,
        progress: &mut dyn std::io::Write,
    ) {
        if let Some(dog) = &mut self.watchdog {
            if let Some(alert) = dog.check(metrics) {
                let _ = writeln!(progress, "watchdog: {alert}");
            }
        }
    }

    /// Pushes a fresh registry to the scrape endpoint, ratio gauge
    /// included.
    fn publish(&self, mut registry: MetricsRegistry) {
        if let Some(server) = &self.server {
            set_ratio_gauge(&mut registry);
            *server.registry().lock().unwrap_or_else(|e| e.into_inner()) = registry;
        }
    }

    /// Final exposition: write `--prom-out`, publish the last page,
    /// linger for late scrapes, then shut the endpoint down.
    fn finish(mut self, mut registry: MetricsRegistry, out: &mut String) -> Result<(), CliError> {
        set_ratio_gauge(&mut registry);
        if let Some(path) = &self.prom_out {
            std::fs::write(path, registry.to_openmetrics())
                .map_err(|e| err(format!("cannot write `{path}`: {e}")))?;
            out.push_str(&format!("metrics: OpenMetrics page → {path}\n"));
        }
        if let Some(server) = self.server.take() {
            *server.registry().lock().unwrap_or_else(|e| e.into_inner()) = registry;
            out.push_str(&format!(
                "metrics: served on http://{}/metrics\n",
                server.local_addr()
            ));
            if self.linger_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(self.linger_ms));
            }
            server.stop();
        }
        Ok(())
    }
}

fn cmd_stream(opts: &Opts, progress: &mut dyn std::io::Write) -> Result<String, CliError> {
    use dbp_core::session::{Backend, Session, SessionSnapshot, TickGrid};
    use dbp_par::Fleet;

    let strict = opts.get("strict").unwrap_or("false") == "true";
    let report_every = opts.u64_or("report-every", 0)? as usize;
    let shards = opts.u32_or("shards", 1)? as usize;
    let algo_name = opts.get("algo").unwrap_or("firstfit");
    let backend = match opts.get("backend").unwrap_or("auto") {
        "auto" => Backend::Auto,
        "exact" => Backend::Exact,
        "tick" => Backend::Tick,
        other => return Err(err(format!("unknown backend `{other}` (auto|exact|tick)"))),
    };
    let grid = match opts.get("grid") {
        None => None,
        Some(spec) => {
            let (t, s) = spec
                .split_once(',')
                .ok_or_else(|| err(format!("--grid expects `T,S`, got `{spec}`")))?;
            let parse = |v: &str, what: &str| {
                v.trim()
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err(format!("--grid {what} scale `{v}` is not a positive u32")))
            };
            Some(TickGrid::new(parse(t, "time")?, parse(s, "size")?))
        }
    };

    // Events come from --input FILE, or stdin when absent.
    let text = match opts.get("input") {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read `{path}`: {e}")))?
        }
        None => {
            use std::io::Read;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| err(format!("cannot read stdin: {e}")))?;
            buf
        }
    };

    let mut out = String::new();
    let mut skipped = 0usize;
    let mut telemetry = StreamTelemetry::from_opts(opts, progress)?;

    if shards > 1 {
        // Sharded ingestion: route by item id across a fleet.
        if opts.get("resume").is_some() || opts.get("checkpoint").is_some() {
            return Err(err("--shards does not combine with --resume/--checkpoint \
                 (checkpoint shards individually via the library API)"
                .to_string()));
        }
        let mut sessions = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut builder = Session::builder(make_algo(algo_name)?)
                .backend(backend)
                .telemetry();
            if let Some(g) = grid {
                builder = builder.grid(g);
            }
            sessions.push(
                builder
                    .build()
                    .map_err(|e| err(format!("cannot build session: {e}")))?,
            );
        }
        let mut fleet = Fleet::new(sessions);
        let mut ingested = 0usize;
        for (lineno, line) in text.lines().enumerate() {
            let Some(parsed) = parse_stream_line(line) else {
                continue;
            };
            let event = match parsed {
                Ok(event) => event,
                Err(e) if strict => {
                    return Err(err(format!("line {}: bad event: {e}", lineno + 1)))
                }
                Err(e) => {
                    let _ = writeln!(progress, "line {}: skipped bad event: {e}", lineno + 1);
                    skipped += 1;
                    continue;
                }
            };
            let shard = event.id().index() % shards;
            if let Err(errors) = fleet.dispatch(&[(shard, event)]) {
                let e = &errors[0];
                if strict {
                    return Err(err(format!(
                        "line {}: shard {} rejected event: {}",
                        lineno + 1,
                        e.shard,
                        e.error
                    )));
                }
                let _ = writeln!(
                    progress,
                    "line {}: shard {} rejected event: {} — skipped",
                    lineno + 1,
                    e.shard,
                    e.error
                );
                skipped += 1;
                continue;
            }
            ingested += 1;
            if telemetry.live() {
                telemetry.watch(&fleet.folded_metrics(), progress);
            }
            let report_due = report_every > 0 && ingested.is_multiple_of(report_every);
            if report_due {
                let m = fleet.metrics();
                let open: usize = m.iter().map(|m| m.open_bins).sum();
                let active: usize = m.iter().map(|m| m.active_items).sum();
                let _ = writeln!(
                    progress,
                    "events {ingested}: {open} open bins, {active} active items across {shards} shards"
                );
            }
            if telemetry.serving() && (report_due || ingested.is_multiple_of(256)) {
                telemetry.publish(fleet.merged_metrics());
            }
        }
        let metrics = fleet.metrics();
        let registry = fleet.merged_metrics();
        let active: usize = metrics.iter().map(|m| m.active_items).sum();
        if active > 0 {
            out.push_str(&format!(
                "stream ended with {active} items still active across {shards} shards\n"
            ));
            for (s, m) in metrics.iter().enumerate() {
                out.push_str(&format!(
                    "  shard {s}: {} events, {} active, {} open bins, usage {}\n",
                    m.events, m.active_items, m.open_bins, m.usage_time
                ));
            }
        } else {
            let outcomes = fleet
                .finish()
                .map_err(|e| err(format!("shard {} failed to finish: {}", e.shard, e.error)))?;
            for (s, o) in outcomes.iter().enumerate() {
                out.push_str(&format!(
                    "shard {s}: {} → {} bins (peak {} open), usage {}\n",
                    o.algorithm(),
                    o.bins_opened(),
                    o.max_open_bins(),
                    o.total_usage()
                ));
            }
            let total: dbp_numeric::Rational = outcomes.iter().map(|o| o.total_usage()).sum();
            out.push_str(&format!("fleet usage {total}\n"));
        }
        if skipped > 0 {
            out.push_str(&format!("skipped {skipped} events\n"));
        }
        telemetry.finish(registry, &mut out)?;
        return Ok(out);
    }

    // Single-session ingestion, with optional checkpoint/resume.
    let mut session = match opts.get("resume") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read checkpoint `{path}`: {e}")))?;
            let snapshot: SessionSnapshot = dbp_proto::checkpoint_from_json(&text)
                .map_err(|e| err(format!("bad checkpoint `{path}`: {e}")))?;
            let session = Session::resume(&snapshot)
                .map_err(|e| err(format!("cannot resume `{path}`: {e}")))?;
            out.push_str(&format!(
                "resumed {} at {} ({} events)\n",
                session.algorithm(),
                session
                    .now()
                    .map_or_else(|| "start".to_string(), |t| t.to_string()),
                snapshot.events.len()
            ));
            session
        }
        None => {
            let mut builder = Session::builder(make_algo(algo_name)?)
                .backend(backend)
                .telemetry();
            if let Some(g) = grid {
                builder = builder.grid(g);
            }
            builder
                .build()
                .map_err(|e| err(format!("cannot build session: {e}")))?
        }
    };

    let mut ingested = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let Some(parsed) = parse_stream_line(line) else {
            continue;
        };
        let result = match parsed {
            Ok(event) => session.apply(&event).map(|_| ()),
            Err(e) if strict => return Err(err(format!("line {}: bad event: {e}", lineno + 1))),
            Err(e) => {
                let _ = writeln!(progress, "line {}: skipped bad event: {e}", lineno + 1);
                skipped += 1;
                continue;
            }
        };
        if let Err(e) = result {
            if strict {
                return Err(err(format!("line {}: rejected event: {e}", lineno + 1)));
            }
            let _ = writeln!(
                progress,
                "line {}: rejected event: {e} — skipped",
                lineno + 1
            );
            skipped += 1;
            continue;
        }
        ingested += 1;
        if telemetry.live() {
            telemetry.watch(&session.metrics(), progress);
        }
        let report_due = report_every > 0 && ingested.is_multiple_of(report_every);
        if report_due {
            let m = session.metrics();
            let _ = writeln!(
                progress,
                "events {}: {} open bins, {} active items, load {}, usage {}",
                m.events, m.open_bins, m.active_items, m.load, m.usage_time
            );
        }
        if telemetry.serving() && (report_due || ingested.is_multiple_of(256)) {
            telemetry.publish(telemetry_registry(&session.metrics()));
        }
    }

    let metrics = session.metrics();
    let registry = telemetry_registry(&metrics);
    if metrics.active_items > 0 {
        out.push_str(&format!(
            "stream ended with {} items still active ({} open bins, usage {} so far)\n",
            metrics.active_items, metrics.open_bins, metrics.usage_time
        ));
        if let Some(path) = opts.get("checkpoint") {
            let snapshot = session
                .snapshot()
                .map_err(|e| err(format!("cannot checkpoint: {e}")))?;
            let json = dbp_proto::checkpoint_to_json(&snapshot);
            std::fs::write(path, json).map_err(|e| err(format!("cannot write `{path}`: {e}")))?;
            out.push_str(&format!("checkpoint written to {path}\n"));
        } else {
            out.push_str("pass --checkpoint FILE to save and resume later\n");
        }
    } else {
        let tick = session.tick_active();
        let outcome = session
            .finish()
            .map_err(|e| err(format!("finish failed: {e}")))?;
        out.push_str(&format!(
            "{}: {} events → {} bins (peak {} open), usage {}{}\n",
            outcome.algorithm(),
            metrics.events,
            outcome.bins_opened(),
            outcome.max_open_bins(),
            outcome.total_usage(),
            if tick { " [tick engine]" } else { "" }
        ));
        if let Some(path) = opts.get("checkpoint") {
            let _ = path;
            out.push_str("stream complete — no checkpoint needed\n");
        }
    }
    if skipped > 0 {
        out.push_str(&format!("skipped {skipped} events\n"));
    }
    telemetry.finish(registry, &mut out)?;
    Ok(out)
}

/// `mindbp serve` — run the multi-tenant allocation daemon in the
/// foreground until a wire `shutdown` frame stops it.
fn cmd_serve(opts: &Opts, progress: &mut dyn std::io::Write) -> Result<String, CliError> {
    use dbp_server::{DbpServer, Quotas, ServerConfig, TokenPolicy};

    let config = ServerConfig {
        listen: opts.get("listen").unwrap_or("127.0.0.1:9500").to_string(),
        metrics: opts.get("metrics").map(str::to_string),
        auth: match opts.get("token") {
            Some(secret) => TokenPolicy::Shared(secret.to_string()),
            None => TokenPolicy::Open,
        },
        quotas: {
            let quota = |name| opts.get(name).map(|_| opts.u64_or(name, 0)).transpose();
            Quotas {
                max_open_bins: quota("max-bins")?,
                max_active_items: quota("max-items")?,
                max_events_per_sec: quota("max-eps")?,
            }
        },
        journal_dir: opts.get("journal-dir").map(std::path::PathBuf::from),
        slow_ms: opts
            .get("slow-ms")
            .map(|_| opts.u64_or("slow-ms", 0))
            .transpose()?,
        trace_out: opts.get("trace-out").map(std::path::PathBuf::from),
        ..ServerConfig::default()
    };
    let durable = config.journal_dir.is_some();
    let trace_out = config.trace_out.clone();

    let server = DbpServer::start(config).map_err(|e| err(format!("cannot start daemon: {e}")))?;
    let _ = writeln!(progress, "serving on {}", server.local_addr());
    if let Some(addr) = server.metrics_addr() {
        let _ = writeln!(progress, "metrics on http://{addr}/metrics");
    }
    if durable {
        let _ = writeln!(
            progress,
            "journaling tenants; restart resumes them verbatim"
        );
    }
    if let Some(path) = &trace_out {
        let _ = writeln!(
            progress,
            "tracing slow requests; shutdown dumps {} and {}",
            path.display(),
            path.with_extension("chrome.json").display()
        );
    }
    server.wait();
    Ok("daemon stopped by wire shutdown\n".to_string())
}

fn cmd_render(opts: &Opts) -> Result<String, CliError> {
    let (_, instance) = load(opts)?;
    let width = opts.u32_or("width", 72)? as usize;
    let mut algo = make_algo_for(opts.get("algo").unwrap_or("firstfit"), &instance)?;
    let outcome = Runner::new(&instance)
        .run(algo.as_mut())
        .map_err(|e| err(format!("packing failed: {e}")))?;
    let mut out = String::new();
    out.push_str(&dbp_viz::timeline(&instance, width));
    out.push('\n');
    out.push_str(&dbp_viz::usage(&instance, &outcome, width));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mindbp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(run(&args(&["help"])).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert!(e.0.contains("unknown command"));
        assert!(e.0.contains("USAGE"));
    }

    #[test]
    fn option_parsing_errors() {
        assert!(run(&args(&["pack", "positional"])).is_err());
        assert!(run(&args(&["pack", "--trace"])).is_err());
        assert!(run(&args(&["generate", "--family", "random"])).is_err()); // no --out
    }

    #[test]
    fn generate_pack_certify_opt_render_pipeline() {
        let path = tmp("pipeline.json");
        let out = run(&args(&[
            "generate", "--family", "random", "--n", "24", "--mu", "3", "--seed", "5", "--out",
            &path,
        ]))
        .unwrap();
        assert!(out.contains("wrote random"));

        let packed = run(&args(&["pack", "--trace", &path, "--algo", "ff"])).unwrap();
        assert!(packed.contains("FirstFit"));
        assert!(packed.contains("servers"));

        let compared = run(&args(&["compare", "--trace", &path])).unwrap();
        assert!(compared.contains("NextFit"));
        assert!(compared.contains("HybridFirstFit"));

        let cert = run(&args(&["certify", "--trace", &path])).unwrap();
        assert!(cert.contains("all certificates hold"), "{cert}");

        let opt = run(&args(&["opt", "--trace", &path])).unwrap();
        assert!(opt.contains("OPT_total"));
        assert!(opt.contains("ratio"));

        let render = run(&args(&["render", "--trace", &path, "--width", "60"])).unwrap();
        assert!(render.contains("span"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gadget_families_generate() {
        for family in ["nextfit", "universal", "ladder", "scatter", "gaming"] {
            let path = tmp(&format!("{family}.json"));
            let out = run(&args(&[
                "generate", "--family", family, "--mu", "3", "--k", "4", "--n", "6", "--out", &path,
            ]))
            .unwrap();
            assert!(out.contains(family), "{out}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn bad_algo_and_billing_are_reported() {
        let path = tmp("bad.json");
        run(&args(&[
            "generate", "--family", "random", "--n", "4", "--out", &path,
        ]))
        .unwrap();
        assert!(run(&args(&["pack", "--trace", &path, "--algo", "nope"]))
            .unwrap_err()
            .0
            .contains("unknown algorithm"));
        assert!(run(&args(&["pack", "--trace", &path, "--billing", "nope"]))
            .unwrap_err()
            .0
            .contains("unknown billing"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clairvoyant_and_harmonic_algos_work() {
        let path = tmp("cv.json");
        run(&args(&[
            "generate",
            "--family",
            "universal",
            "--k",
            "6",
            "--mu",
            "4",
            "--out",
            &path,
        ]))
        .unwrap();
        let aligned = run(&args(&["pack", "--trace", &path, "--algo", "aligned"])).unwrap();
        assert!(aligned.contains("DepartureAlignedFit"));
        let harmonic = run(&args(&["pack", "--trace", &path, "--algo", "harmonic"])).unwrap();
        assert!(harmonic.contains("HybridFirstFit"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chain_and_adaptive_commands_work() {
        let path = tmp("chain.json");
        run(&args(&[
            "generate", "--family", "random", "--n", "16", "--mu", "3", "--seed", "2", "--out",
            &path,
        ]))
        .unwrap();
        let chain = run(&args(&["chain", "--trace", &path])).unwrap();
        assert!(chain.contains("Theorem 1 chain"), "{chain}");
        assert!(chain.contains("every step holds"), "{chain}");
        std::fs::remove_file(&path).unwrap();

        let game = run(&args(&[
            "adaptive", "--algo", "bestfit", "--k", "6", "--mu", "4",
        ]))
        .unwrap();
        assert!(game.contains("keep-smallest"), "{game}");
        assert!(game.contains("cost: 24"), "{game}"); // kµ = 24
    }

    #[test]
    fn pack_emits_observability_files_and_stats_reads_them() {
        let path = tmp("obs-in.json");
        let events = tmp("obs-events.jsonl");
        let metrics = tmp("obs-metrics.json");
        let chrome = tmp("obs-chrome.json");
        run(&args(&[
            "generate", "--family", "random", "--n", "20", "--mu", "3", "--seed", "9", "--out",
            &path,
        ]))
        .unwrap();
        let packed = run(&args(&[
            "pack",
            "--trace",
            &path,
            "--algo",
            "firstfit",
            "--events",
            &events,
            "--metrics",
            &metrics,
            "--chrome",
            &chrome,
        ]))
        .unwrap();
        assert!(packed.contains("trace events"), "{packed}");
        assert!(packed.contains("registry snapshot"), "{packed}");
        assert!(packed.contains("trace-event file"), "{packed}");

        // The emitted event log replays cleanly and carries the run.
        let text = std::fs::read_to_string(&events).unwrap();
        let parsed = parse_jsonl(&text).unwrap();
        assert!(dbp_obs::replay(&parsed).is_ok());

        // The metrics snapshot is valid JSON with the core counters.
        let snap = serde_json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let counters = snap.get("counters").unwrap();
        assert_eq!(counters.get("arrivals").unwrap().as_int(), Some(20));

        // The chrome export is valid JSON with a traceEvents array.
        let doc = serde_json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_array().is_some());

        // `stats` summarizes the event log.
        let stats = run(&args(&["stats", "--trace", &events])).unwrap();
        assert!(stats.contains("20 arrivals"), "{stats}");
        assert!(stats.contains("replay: OK"), "{stats}");
        assert!(stats.contains("utilization"), "{stats}");

        for f in [&path, &events, &metrics, &chrome] {
            std::fs::remove_file(f).unwrap();
        }
    }

    #[test]
    fn tick_command_compiles_verifies_and_falls_back() {
        let path = tmp("tick.json");
        run(&args(&[
            "generate", "--family", "random", "--n", "30", "--mu", "4", "--seed", "11", "--out",
            &path,
        ]))
        .unwrap();
        // Compiled replay, verified bit-identical against the exact
        // engine, for every supported policy.
        for algo in ["firstfit", "bestfit", "worstfit"] {
            let out = run(&args(&["tick", "--trace", &path, "--algo", algo])).unwrap();
            assert!(out.contains("compiled:"), "{out}");
            assert!(out.contains("verify: OK"), "{out}");
            assert!(out.contains("usage"), "{out}");
        }
        // --verify false skips the exact replay.
        let quick = run(&args(&["tick", "--trace", &path, "--verify", "false"])).unwrap();
        assert!(!quick.contains("verify:"), "{quick}");
        // Unsupported algorithms are rejected up front.
        let e = run(&args(&["tick", "--trace", &path, "--algo", "nextfit"])).unwrap_err();
        assert!(e.0.contains("tick engine supports"), "{e}");
        std::fs::remove_file(&path).unwrap();

        // A trace whose denominator LCM blows the grid falls back to
        // the Rational engine, transparently.
        let coprime = Instance::builder()
            .item(
                Rational::new(1, 2),
                Rational::new(1, 99991),
                Rational::new(1, 99991) + Rational::new(1, 99989),
            )
            .build()
            .unwrap();
        let trace = Trace::from_instance("custom", "coprime prime denominators", &coprime);
        let wide = tmp("tick-wide.json");
        save_instance(Path::new(&wide), &trace).unwrap();
        let out = run(&args(&["tick", "--trace", &wide])).unwrap();
        assert!(out.contains("falling back"), "{out}");
        assert!(out.contains("FirstFit"), "{out}");
        std::fs::remove_file(&wide).unwrap();
    }

    #[test]
    fn profile_burst_generates_its_own_workload() {
        // No --trace: --burst synthesizes 32 waves × 6 arrivals whose
        // departure and arrival bursts share ticks.
        let out = run(&args(&[
            "profile",
            "--burst",
            "6",
            "--algo",
            "firstfit-fast",
        ]))
        .unwrap();
        assert!(out.contains("equal-tick bursts"), "{out}");
        assert!(out.contains("192 items"), "{out}");
        assert!(out.contains("profile: 384 events"), "{out}");
        assert!(out.contains("fit_scan"), "{out}");
        // Without --burst the trace is still required.
        let e = run(&args(&["profile", "--algo", "firstfit-fast"])).unwrap_err();
        assert!(e.0.contains("--trace"), "{e}");
    }

    #[test]
    fn profile_command_reports_shares_and_writes_exports() {
        let path = tmp("profile.json");
        run(&args(&[
            "generate", "--family", "random", "--n", "40", "--mu", "4", "--seed", "3", "--out",
            &path,
        ]))
        .unwrap();
        let folded = tmp("profile.folded");
        let chrome = tmp("profile-chrome.json");
        let metrics = tmp("profile-metrics.json");
        let out = run(&args(&[
            "profile",
            "--trace",
            &path,
            "--algo",
            "firstfit-fast",
            "--folded",
            &folded,
            "--chrome",
            &chrome,
            "--metrics",
            &metrics,
        ]))
        .unwrap();
        assert!(out.contains("FirstFitFast"), "{out}");
        assert!(out.contains("profile: 80 events"), "{out}");
        assert!(out.contains("fit_scan"), "{out}");
        assert!(out.contains("departure_drain"), "{out}");
        // The folded file is `stack weight` lines rooted at "engine".
        let stacks = std::fs::read_to_string(&folded).unwrap();
        assert!(stacks.lines().all(|l| l.starts_with("engine;")), "{stacks}");
        assert!(stacks
            .lines()
            .all(|l| l.rsplit(' ').next().unwrap().parse::<u64>().is_ok()));
        // The chrome doc holds both bin tracks (pid 1) and profiler
        // spans (pid 2).
        let doc = serde_json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let pid = |p: i128| {
            events
                .iter()
                .filter(|e| e.get("pid").and_then(serde_json::Value::as_int) == Some(p))
                .count()
        };
        assert!(pid(1) > 0 && pid(2) > 0);
        // The metrics registry carries the profile families.
        let reg = std::fs::read_to_string(&metrics).unwrap();
        assert!(reg.contains("profile_fit_scan_self_ns"), "{reg}");
        // firstfit-fast answers placements from the tree index.
        assert!(reg.contains("probe_tree_depth"), "{reg}");

        // Sampling and strict backends work; tick + --chrome is the
        // observer conflict the runner reports.
        let sampled = run(&args(&[
            "profile",
            "--trace",
            &path,
            "--backend",
            "tick",
            "--sample",
            "4",
        ]))
        .unwrap();
        assert!(sampled.contains("20 sampled"), "{sampled}");
        let e = run(&args(&[
            "profile",
            "--trace",
            &path,
            "--backend",
            "tick",
            "--chrome",
            &chrome,
        ]))
        .unwrap_err();
        assert!(e.0.contains("exact engine"), "{e}");
        for f in [&path, &folded, &chrome, &metrics] {
            std::fs::remove_file(f).unwrap();
        }
    }

    #[test]
    fn stats_rejects_garbage_and_handles_empty() {
        let bad = tmp("stats-bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        assert!(run(&args(&["stats", "--trace", &bad])).is_err());
        // Reordered timestamps must be rejected, not panic the
        // series integrator.
        std::fs::write(
            &bad,
            concat!(
                "{\"BinOpened\":{\"t\":{\"num\":5,\"den\":1},\"bin\":0}}\n",
                "{\"BinOpened\":{\"t\":{\"num\":1,\"den\":1},\"bin\":1}}\n",
            ),
        )
        .unwrap();
        let e = run(&args(&["stats", "--trace", &bad])).unwrap_err();
        assert!(e.0.contains("time goes backwards"), "{e}");
        std::fs::write(&bad, "\n\n").unwrap();
        let out = run(&args(&["stats", "--trace", &bad])).unwrap();
        assert!(out.contains("empty trace"), "{out}");
        std::fs::remove_file(&bad).unwrap();
    }

    #[test]
    fn hourly_billing_increases_cost() {
        let path = tmp("billing.json");
        run(&args(&[
            "generate", "--family", "gaming", "--n", "10", "--seed", "3", "--out", &path,
        ]))
        .unwrap();
        let cont = run(&args(&[
            "pack",
            "--trace",
            &path,
            "--billing",
            "continuous",
        ]))
        .unwrap();
        let hourly = run(&args(&["pack", "--trace", &path, "--billing", "hourly"])).unwrap();
        assert!(cont.contains("billed"));
        assert!(hourly.contains("quantized"));
        std::fs::remove_file(&path).unwrap();
    }

    /// A well-formed four-event JSONL stream: two items into one bin.
    const STREAM_JSONL: &str = r#"
{"arrive": {"id": 0, "size": {"num": 1, "den": 2}, "time": {"num": 0, "den": 1}}}
{"arrive": {"id": 1, "size": {"num": 1, "den": 3}, "time": {"num": 1, "den": 1}}}
{"depart": {"id": 0, "time": {"num": 2, "den": 1}}}
{"depart": {"id": 1, "time": {"num": 3, "den": 1}}}
"#;

    /// Runs with a captured progress stream; returns (result, progress).
    fn run_capturing(a: &[&str]) -> (Result<String, CliError>, String) {
        let mut buf = Vec::new();
        let result = run_to(&args(a), &mut buf);
        (result, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn stream_command_runs_a_full_session() {
        let path = tmp("stream.jsonl");
        std::fs::write(&path, STREAM_JSONL).unwrap();
        let (out, progress) = run_capturing(&["stream", "--input", &path, "--report-every", "2"]);
        let out = out.unwrap();
        assert!(out.contains("FirstFit"), "{out}");
        assert!(out.contains("1 bins"), "{out}");
        assert!(out.contains("usage 3"), "{out}");
        // Live metrics lines ride the progress stream, not stdout.
        assert!(progress.contains("events 2:"), "{progress}");
        assert!(!out.contains("events 2:"), "{out}");

        // With a declared grid the integer engine takes the stream.
        let ticked = run(&args(&["stream", "--input", &path, "--grid", "1,6"])).unwrap();
        assert!(ticked.contains("[tick engine]"), "{ticked}");
        assert!(ticked.contains("usage 3"), "{ticked}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_malformed_lines_skip_or_abort() {
        let path = tmp("stream-bad.jsonl");
        std::fs::write(
            &path,
            "{\"arrive\": {\"id\": 0, \"size\": {\"num\": 1, \"den\": 2}, \"time\": {\"num\": 0, \"den\": 1}}}\n\
             this is not json\n\
             {\"depart\": {\"id\": 0, \"time\": {\"num\": 1, \"den\": 1}}}\n",
        )
        .unwrap();
        // Default: skip with a line-numbered note, still finish. The
        // note goes to progress; the summary count stays on stdout.
        let (out, progress) = run_capturing(&["stream", "--input", &path]);
        let out = out.unwrap();
        assert!(progress.contains("line 2: skipped bad event"), "{progress}");
        assert!(out.contains("skipped 1 events"), "{out}");
        assert!(out.contains("usage 1"), "{out}");
        // Strict: abort with the line number, as an error not a panic.
        let e = run(&args(&["stream", "--input", &path, "--strict", "true"])).unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_rejected_events_are_line_numbered() {
        let path = tmp("stream-reject.jsonl");
        std::fs::write(
            &path,
            "{\"arrive\": {\"id\": 0, \"size\": {\"num\": 1, \"den\": 2}, \"time\": {\"num\": 5, \"den\": 1}}}\n\
             {\"arrive\": {\"id\": 1, \"size\": {\"num\": 1, \"den\": 2}, \"time\": {\"num\": 3, \"den\": 1}}}\n\
             {\"depart\": {\"id\": 0, \"time\": {\"num\": 9, \"den\": 1}}}\n",
        )
        .unwrap();
        let (out, progress) = run_capturing(&["stream", "--input", &path]);
        let out = out.unwrap();
        assert!(progress.contains("line 2: rejected event"), "{progress}");
        assert!(out.contains("usage 4"), "{out}");
        let e = run(&args(&["stream", "--input", &path, "--strict", "true"])).unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_prom_out_writes_an_openmetrics_page() {
        let path = tmp("stream-prom.jsonl");
        let page = tmp("stream-prom.txt");
        std::fs::write(&path, STREAM_JSONL).unwrap();
        let out = run(&args(&["stream", "--input", &path, "--prom-out", &page])).unwrap();
        assert!(out.contains("OpenMetrics page"), "{out}");
        let text = std::fs::read_to_string(&page).unwrap();
        assert!(text.contains("dbp_events_total 4"), "{text}");
        // usage 3 over lower bound max(vol 5/3, span 3) = 3 → ratio 1.
        assert!(text.contains("dbp_ratio_upper_estimate 1\n"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");

        // Sharded: the merged fleet registry feeds the same page.
        let sharded = run(&args(&[
            "stream",
            "--input",
            &path,
            "--shards",
            "2",
            "--prom-out",
            &page,
        ]))
        .unwrap();
        assert!(sharded.contains("fleet usage 4"), "{sharded}");
        let text = std::fs::read_to_string(&page).unwrap();
        assert!(text.contains("dbp_events_total 4"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        for f in [&path, &page] {
            std::fs::remove_file(f).unwrap();
        }
    }

    #[test]
    fn stream_watchdog_alerts_ride_the_progress_stream() {
        let path = tmp("stream-dog.jsonl");
        std::fs::write(&path, STREAM_JSONL).unwrap();
        // The session's live ratio reaches 1; a threshold of 1/2
        // must trip the watchdog exactly once (edge-triggered).
        let (out, progress) = run_capturing(&["stream", "--input", &path, "--watchdog", "1/2"]);
        let out = out.unwrap();
        assert!(progress.contains("watchdog:"), "{progress}");
        assert_eq!(progress.matches("watchdog:").count(), 1, "{progress}");
        assert!(!out.contains("watchdog:"), "{out}");
        // `--watchdog off` silences it; garbage is rejected up front.
        let (_, quiet) = run_capturing(&["stream", "--input", &path, "--watchdog", "off"]);
        assert!(!quiet.contains("watchdog:"), "{quiet}");
        let e = run(&args(&["stream", "--input", &path, "--watchdog", "fast"])).unwrap_err();
        assert!(e.0.contains("--watchdog"), "{e}");
        std::fs::remove_file(&path).unwrap();
    }

    /// A `Write` that appends to a shared buffer, so a test can watch
    /// another thread's progress stream live.
    #[derive(Clone)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_prom_listen_serves_scrapes_while_lingering() {
        use std::io::{Read as _, Write as _};

        let path = tmp("stream-listen.jsonl");
        std::fs::write(&path, STREAM_JSONL).unwrap();
        let shared = SharedBuf(Default::default());
        let progress = shared.clone();
        let cli_args = args(&[
            "stream",
            "--input",
            &path,
            "--prom-listen",
            "127.0.0.1:0",
            "--prom-linger-ms",
            "4000",
        ]);
        let worker = std::thread::spawn(move || {
            let mut progress = progress;
            run_to(&cli_args, &mut progress)
        });

        // The progress stream announces the bound address up front.
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
                if let Some(rest) = text.split("http://").nth(1) {
                    break rest.split("/metrics").next().unwrap().to_string();
                }
                assert!(std::time::Instant::now() < deadline, "no address: {text}");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };

        // Scrape during the linger window, retrying until the final
        // registry (published at stream end) is visible.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let response = loop {
            let mut stream = std::net::TcpStream::connect(&addr).unwrap();
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            if response.contains("dbp_ratio_upper_estimate") {
                break response;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stale page: {response}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        assert!(
            response.contains(dbp_obs::OPENMETRICS_CONTENT_TYPE),
            "{response}"
        );
        assert!(response.contains("dbp_events_total 4"), "{response}");
        assert!(
            response.contains("dbp_ratio_upper_estimate 1"),
            "{response}"
        );
        assert!(response.trim_end().ends_with("# EOF"), "{response}");

        let out = worker.join().unwrap().unwrap();
        assert!(out.contains("metrics: served on"), "{out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_checkpoint_resume_round_trip() {
        let first = tmp("stream-ckpt-1.jsonl");
        let rest = tmp("stream-ckpt-2.jsonl");
        let ckpt = tmp("stream.ckpt");
        std::fs::write(
            &first,
            "{\"arrive\": {\"id\": 0, \"size\": {\"num\": 1, \"den\": 2}, \"time\": {\"num\": 0, \"den\": 1}}}\n\
             {\"arrive\": {\"id\": 1, \"size\": {\"num\": 1, \"den\": 3}, \"time\": {\"num\": 1, \"den\": 1}}}\n",
        )
        .unwrap();
        std::fs::write(
            &rest,
            "{\"depart\": {\"id\": 0, \"time\": {\"num\": 2, \"den\": 1}}}\n\
             {\"depart\": {\"id\": 1, \"time\": {\"num\": 3, \"den\": 1}}}\n",
        )
        .unwrap();
        let out = run(&args(&["stream", "--input", &first, "--checkpoint", &ckpt])).unwrap();
        assert!(out.contains("2 items still active"), "{out}");
        assert!(out.contains("checkpoint written"), "{out}");
        let out = run(&args(&["stream", "--input", &rest, "--resume", &ckpt])).unwrap();
        assert!(out.contains("resumed FirstFit"), "{out}");
        assert!(out.contains("usage 3"), "{out}");
        for p in [&first, &rest, &ckpt] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn stream_shards_split_by_item_id() {
        let path = tmp("stream-shards.jsonl");
        std::fs::write(&path, STREAM_JSONL).unwrap();
        let out = run(&args(&["stream", "--input", &path, "--shards", "2"])).unwrap();
        assert!(out.contains("shard 0:"), "{out}");
        assert!(out.contains("shard 1:"), "{out}");
        assert!(out.contains("fleet usage 4"), "{out}");
        // Checkpointing a sharded stream is rejected up front.
        let e = run(&args(&[
            "stream",
            "--input",
            &path,
            "--shards",
            "2",
            "--checkpoint",
            "/tmp/x",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--shards"), "{e}");
        std::fs::remove_file(&path).unwrap();
    }
}
