//! Random multi-dimensional workloads (CPU/memory style).

use crate::model::MdInstance;
use crate::vector::ResourceVec;
use dbp_numeric::{rat, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Correlation profile between resource dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlation {
    /// Coordinates drawn independently.
    Independent,
    /// Jobs are either dimension-0-heavy or dimension-1-heavy
    /// (anti-correlated: complementary pairs pack well offline —
    /// the regime where vector packing is genuinely harder online).
    Complementary,
    /// All coordinates equal (reduces to scalar behavior).
    Identical,
}

/// A seeded random vector-workload specification.
#[derive(Debug, Clone)]
pub struct MdRandomWorkload {
    /// Number of jobs.
    pub n: usize,
    /// Resource dimension.
    pub dim: usize,
    /// Seed.
    pub seed: u64,
    /// Duration ratio target (durations uniform on the grid in
    /// `[1, mu]`).
    pub mu: Rational,
    /// Arrival horizon.
    pub horizon: Rational,
    /// Grid denominator.
    pub grid: i128,
    /// Largest coordinate drawn.
    pub max_coord: Rational,
    /// Coordinate correlation.
    pub correlation: Correlation,
}

impl MdRandomWorkload {
    /// CPU+memory default: `d = 2`, complementary demands.
    pub fn cpu_mem(n: usize, mu: Rational, seed: u64) -> MdRandomWorkload {
        MdRandomWorkload {
            n,
            dim: 2,
            seed,
            mu,
            horizon: rat(n as i128 / 4 + 1, 1),
            grid: 16,
            max_coord: rat(3, 4),
            correlation: Correlation::Complementary,
        }
    }

    /// Generates the instance.
    pub fn generate(&self) -> MdInstance {
        assert!(self.dim >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut specs = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let size = self.sample_size(&mut rng);
            let arrival = self.grid_uniform(&mut rng, Rational::ZERO, self.horizon);
            let duration = self.grid_uniform(&mut rng, Rational::ONE, self.mu);
            specs.push((size, arrival, arrival + duration));
        }
        MdInstance::new(specs).expect("generator produces valid specs")
    }

    fn grid_uniform(&self, rng: &mut StdRng, lo: Rational, hi: Rational) -> Rational {
        let lo_steps = (lo * rat(self.grid, 1)).ceil();
        let hi_steps = (hi * rat(self.grid, 1)).floor();
        rat(rng.gen_range(lo_steps..=hi_steps.max(lo_steps)), self.grid)
    }

    fn coord(&self, rng: &mut StdRng, lo: Rational) -> Rational {
        self.grid_uniform(rng, lo.max(rat(1, self.grid)), self.max_coord)
    }

    fn sample_size(&self, rng: &mut StdRng) -> ResourceVec {
        let min = rat(1, self.grid);
        match self.correlation {
            Correlation::Independent => {
                ResourceVec::new((0..self.dim).map(|_| self.coord(rng, min)).collect())
            }
            Correlation::Identical => {
                let x = self.coord(rng, min);
                ResourceVec::new(vec![x; self.dim])
            }
            Correlation::Complementary => {
                // One "heavy" dimension near max_coord, others light.
                let heavy = rng.gen_range(0..self.dim);
                ResourceVec::new(
                    (0..self.dim)
                        .map(|j| {
                            if j == heavy {
                                self.grid_uniform(
                                    rng,
                                    self.max_coord * Rational::HALF,
                                    self.max_coord,
                                )
                            } else {
                                self.grid_uniform(rng, min, self.max_coord * rat(1, 3))
                            }
                        })
                        .collect(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let wl = MdRandomWorkload::cpu_mem(60, rat(4, 1), 9);
        let a = wl.generate();
        let b = wl.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
        assert_eq!(a.dim(), 2);
        assert!(a.mu().unwrap() <= rat(4, 1));
        for item in a.items() {
            assert!(item.size.valid_demand());
            assert!(item.size.max_coord() <= rat(3, 4));
        }
    }

    #[test]
    fn complementary_workloads_have_a_heavy_dimension() {
        let inst = MdRandomWorkload::cpu_mem(80, rat(2, 1), 4).generate();
        let heavy_count = inst
            .items()
            .iter()
            .filter(|r| r.size.max_coord() >= rat(3, 8))
            .count();
        assert!(heavy_count > 60, "most jobs should have a heavy dimension");
    }

    #[test]
    fn identical_correlation_duplicates_coordinates() {
        let mut wl = MdRandomWorkload::cpu_mem(20, rat(2, 1), 5);
        wl.correlation = Correlation::Identical;
        wl.dim = 3;
        let inst = wl.generate();
        for item in inst.items() {
            let c = item.size.coords();
            assert!(c.iter().all(|x| *x == c[0]));
        }
    }
}
