#![warn(missing_docs)]

//! # `dbp-multidim` — multi-dimensional MinUsageTime DBP
//!
//! The paper closes (§IX) with: *"One direction for future work is to
//! extend the MinUsageTime DBP problem to the multi-dimensional
//! version to model multiple types of resources (e.g., CPU and
//! memory) for online cloud server allocation."* This crate is that
//! extension.
//!
//! Items now have a **resource vector** `s(r) ∈ (0,1]^d` (one
//! coordinate per resource: CPU, memory, GPU, network …); a bin
//! (server) holds a set of active items iff the coordinate-wise sum
//! stays within the all-ones capacity vector. The objective is
//! unchanged: minimize total bin usage time.
//!
//! Contents:
//!
//! * [`vector`] — exact resource vectors ([`ResourceVec`]).
//! * [`model`] — items, validated instances, `vol`/`span`/`µ` bounds
//!   (Propositions 1 and 2 lift coordinate-wise: `OPT_total ≥ max_j
//!   Σ_r s_j(r)|I(r)|` and `OPT_total ≥ span`).
//! * [`engine`] — the vector packing engine (same contract as
//!   `dbp-core`'s: online, feasibility-enforcing, exact books).
//! * [`algo`] — vector First Fit / Best Fit (two scalarizations) /
//!   Worst Fit / Next Fit.
//! * [`opt`] — lower bounds and an exact branch-and-bound vector bin
//!   packing solver for the repacking adversary.
//!
//! The one-dimensional case is bit-for-bit equivalent to `dbp-core`
//! (cross-validated by the `d1_equivalence` tests), so everything
//! measured here extends the scalar reproduction conservatively.

pub mod algo;
pub mod engine;
pub mod model;
pub mod opt;
pub mod random;
pub mod vector;

pub use algo::{MdAlgorithm, MdBestFitBySum, MdFirstFit, MdNextFit, MdPlacement, MdWorstFit};
pub use engine::{run_md_packing, MdBinRecord, MdOutcome, MdPackingError};
pub use model::{MdInstance, MdInstanceError, MdItem};
pub use opt::{md_opt_lower_bound, md_opt_total, MdOptTotal};
pub use random::{Correlation, MdRandomWorkload};
pub use vector::ResourceVec;
