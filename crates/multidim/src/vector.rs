//! Exact resource vectors.

use dbp_numeric::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A `d`-dimensional vector of exact rationals, one coordinate per
/// resource type. Bin capacity is the all-ones vector.
///
/// ```
/// use dbp_multidim::ResourceVec;
/// use dbp_numeric::rat;
///
/// let cpu_mem = ResourceVec::new(vec![rat(1, 2), rat(1, 4)]);
/// let more = ResourceVec::new(vec![rat(1, 2), rat(1, 2)]);
/// let sum = cpu_mem.clone() + more;
/// assert!(sum.within_unit()); // (1, 3/4) fits a unit server
/// assert_eq!(sum.max_coord(), rat(1, 1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceVec(Vec<Rational>);

impl ResourceVec {
    /// Builds a vector from coordinates (must be non-empty).
    pub fn new(coords: Vec<Rational>) -> ResourceVec {
        assert!(!coords.is_empty(), "resource vector needs ≥ 1 dimension");
        ResourceVec(coords)
    }

    /// The all-zeros vector of dimension `d`.
    pub fn zeros(d: usize) -> ResourceVec {
        ResourceVec::new(vec![Rational::ZERO; d])
    }

    /// Scalar convenience: a 1-dimensional vector.
    pub fn scalar(x: Rational) -> ResourceVec {
        ResourceVec::new(vec![x])
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinate accessor.
    pub fn coord(&self, j: usize) -> Rational {
        self.0[j]
    }

    /// All coordinates.
    pub fn coords(&self) -> &[Rational] {
        &self.0
    }

    /// The largest coordinate (used for FFD ordering and the
    /// per-instant load bound).
    pub fn max_coord(&self) -> Rational {
        self.0.iter().copied().max().expect("non-empty")
    }

    /// Sum of coordinates (Best-Fit-by-sum scalarization).
    pub fn sum(&self) -> Rational {
        self.0.iter().copied().sum()
    }

    /// `true` iff every coordinate is within `[0, 1]`.
    pub fn within_unit(&self) -> bool {
        self.0
            .iter()
            .all(|x| !x.is_negative() && *x <= Rational::ONE)
    }

    /// `true` iff every coordinate is strictly positive — the
    /// validity requirement for item demands... relaxed: at least one
    /// coordinate positive and none negative (a job may use zero of
    /// some resource).
    pub fn valid_demand(&self) -> bool {
        self.0.iter().all(|x| !x.is_negative())
            && self.0.iter().any(|x| x.is_positive())
            && self.0.iter().all(|x| *x <= Rational::ONE)
    }

    /// Coordinate-wise `self + other ≤ 1`?
    pub fn fits_with(&self, other: &ResourceVec) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.0
            .iter()
            .zip(&other.0)
            .all(|(a, b)| *a + *b <= Rational::ONE)
    }

    /// Scales by a rational (used for time–space demand).
    pub fn scale(&self, k: Rational) -> ResourceVec {
        ResourceVec::new(self.0.iter().map(|x| *x * k).collect())
    }

    /// Coordinate-wise maximum.
    pub fn sup(&self, other: &ResourceVec) -> ResourceVec {
        debug_assert_eq!(self.dim(), other.dim());
        ResourceVec::new(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| (*a).max(*b))
                .collect(),
        )
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(mut self, rhs: ResourceVec) -> ResourceVec {
        self += rhs;
        self
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a += b;
        }
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    fn sub(mut self, rhs: ResourceVec) -> ResourceVec {
        self -= rhs;
        self
    }
}

impl SubAssign for ResourceVec {
    fn sub_assign(&mut self, rhs: ResourceVec) {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a -= b;
        }
    }
}

impl fmt::Debug for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn arithmetic_is_coordinatewise() {
        let a = ResourceVec::new(vec![rat(1, 2), rat(1, 3)]);
        let b = ResourceVec::new(vec![rat(1, 4), rat(1, 3)]);
        let s = a.clone() + b.clone();
        assert_eq!(s.coord(0), rat(3, 4));
        assert_eq!(s.coord(1), rat(2, 3));
        let d = s - b;
        assert_eq!(d, a);
    }

    #[test]
    fn fits_with_requires_every_coordinate() {
        let a = ResourceVec::new(vec![rat(1, 2), rat(9, 10)]);
        let small_cpu = ResourceVec::new(vec![rat(1, 2), rat(1, 10)]);
        let big_mem = ResourceVec::new(vec![rat(1, 10), rat(1, 5)]);
        assert!(a.fits_with(&small_cpu)); // (1, 1) exactly
        assert!(!a.fits_with(&big_mem)); // memory exceeds
    }

    #[test]
    fn scalarizations() {
        let v = ResourceVec::new(vec![rat(1, 2), rat(1, 8), rat(3, 4)]);
        assert_eq!(v.max_coord(), rat(3, 4));
        assert_eq!(v.sum(), rat(11, 8));
        assert_eq!(v.scale(rat(2, 1)).coord(0), rat(1, 1));
        assert_eq!(v.dim(), 3);
    }

    #[test]
    fn validity_rules() {
        assert!(ResourceVec::new(vec![rat(1, 2), Rational::ZERO]).valid_demand());
        assert!(!ResourceVec::zeros(2).valid_demand()); // all-zero demand
        assert!(!ResourceVec::new(vec![rat(3, 2)]).valid_demand()); // > 1
        assert!(ResourceVec::scalar(rat(1, 1)).valid_demand());
    }

    #[test]
    fn sup_is_coordinatewise_max() {
        let a = ResourceVec::new(vec![rat(1, 2), rat(1, 8)]);
        let b = ResourceVec::new(vec![rat(1, 4), rat(1, 2)]);
        let s = a.sup(&b);
        assert_eq!(s.coord(0), rat(1, 2));
        assert_eq!(s.coord(1), rat(1, 2));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = ResourceVec::scalar(rat(1, 2)) + ResourceVec::zeros(2);
    }

    #[test]
    fn display() {
        let v = ResourceVec::new(vec![rat(1, 2), rat(1, 3)]);
        assert_eq!(v.to_string(), "(1/2, 1/3)");
    }
}
