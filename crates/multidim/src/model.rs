//! Multi-dimensional items and instances.

use crate::vector::ResourceVec;
use dbp_core::ItemId;
use dbp_numeric::{Interval, IntervalSet, Rational};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A job with a resource vector demand and an activity interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MdItem {
    /// Identifier (index in the instance).
    pub id: ItemId,
    /// Resource demand vector, each coordinate in `[0, 1]`, at least
    /// one positive.
    pub size: ResourceVec,
    /// Activity interval `[arrival, departure)`.
    pub interval: Interval,
}

impl MdItem {
    /// Arrival time.
    pub fn arrival(&self) -> Rational {
        self.interval.lo()
    }

    /// Departure time.
    pub fn departure(&self) -> Rational {
        self.interval.hi()
    }

    /// Duration.
    pub fn duration(&self) -> Rational {
        self.interval.len()
    }

    /// `true` iff active at `t`.
    pub fn active_at(&self, t: Rational) -> bool {
        self.interval.contains_point(t)
    }
}

/// Validation failures for [`MdInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdInstanceError {
    /// A demand vector is outside the unit box or all-zero.
    BadSize(usize),
    /// An activity interval is empty or reversed.
    EmptyInterval(usize),
    /// Items have inconsistent dimensions.
    DimensionMismatch {
        /// Offending item index.
        item: usize,
        /// Its dimension.
        got: usize,
        /// The instance dimension (from item 0).
        expected: usize,
    },
}

impl fmt::Display for MdInstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdInstanceError::BadSize(i) => write!(f, "item {i}: invalid demand vector"),
            MdInstanceError::EmptyInterval(i) => write!(f, "item {i}: empty interval"),
            MdInstanceError::DimensionMismatch {
                item,
                got,
                expected,
            } => {
                write!(
                    f,
                    "item {item}: dimension {got} ≠ instance dimension {expected}"
                )
            }
        }
    }
}

impl std::error::Error for MdInstanceError {}

/// A validated multi-dimensional MinUsageTime DBP instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MdInstance {
    dim: usize,
    items: Vec<MdItem>,
}

impl MdInstance {
    /// Validates and builds from `(size, arrival, departure)` specs.
    pub fn new(
        specs: Vec<(ResourceVec, Rational, Rational)>,
    ) -> Result<MdInstance, MdInstanceError> {
        let dim = specs.first().map(|(v, _, _)| v.dim()).unwrap_or(1);
        let mut items = Vec::with_capacity(specs.len());
        for (i, (size, arrival, departure)) in specs.into_iter().enumerate() {
            if size.dim() != dim {
                return Err(MdInstanceError::DimensionMismatch {
                    item: i,
                    got: size.dim(),
                    expected: dim,
                });
            }
            if !size.valid_demand() {
                return Err(MdInstanceError::BadSize(i));
            }
            if arrival >= departure {
                return Err(MdInstanceError::EmptyInterval(i));
            }
            items.push(MdItem {
                id: ItemId(i as u32),
                size,
                interval: Interval::new(arrival, departure),
            });
        }
        Ok(MdInstance { dim, items })
    }

    /// Lifts a scalar instance into `d = 1`.
    pub fn from_scalar(instance: &dbp_core::Instance) -> MdInstance {
        MdInstance {
            dim: 1,
            items: instance
                .items()
                .iter()
                .map(|r| MdItem {
                    id: r.id,
                    size: ResourceVec::scalar(r.size),
                    interval: r.interval,
                })
                .collect(),
        }
    }

    /// Resource dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The items.
    pub fn items(&self) -> &[MdItem] {
        &self.items
    }

    /// Item count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lookup by id.
    pub fn item(&self, id: ItemId) -> &MdItem {
        &self.items[id.index()]
    }

    /// Per-dimension time–space demand
    /// `vol_j = Σ_r s_j(r)·|I(r)|`; Proposition 1 lifts to
    /// `OPT_total ≥ max_j vol_j`.
    pub fn vol_vector(&self) -> ResourceVec {
        let mut acc = ResourceVec::zeros(self.dim);
        for r in &self.items {
            acc += r.size.scale(r.duration());
        }
        acc
    }

    /// `max_j vol_j` — the lifted Proposition 1 bound.
    pub fn vol(&self) -> Rational {
        self.vol_vector().max_coord()
    }

    /// `span(R)` (Proposition 2, unchanged).
    pub fn span(&self) -> Rational {
        IntervalSet::from_intervals(self.items.iter().map(|r| r.interval)).measure()
    }

    /// Duration ratio `µ`.
    pub fn mu(&self) -> Option<Rational> {
        let max = self.items.iter().map(MdItem::duration).max()?;
        let min = self.items.iter().map(MdItem::duration).min()?;
        Some(max / min)
    }

    /// Sorted, deduplicated event times.
    pub fn event_times(&self) -> Vec<Rational> {
        let mut ts: Vec<Rational> = self
            .items
            .iter()
            .flat_map(|r| [r.arrival(), r.departure()])
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Peak concurrent item count.
    pub fn max_concurrency(&self) -> usize {
        let mut events: Vec<(Rational, i32)> = Vec::with_capacity(self.items.len() * 2);
        for r in &self.items {
            events.push((r.arrival(), 1));
            events.push((r.departure(), -1));
        }
        events.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = 0i64;
        let mut max = 0i64;
        for (_, d) in events {
            cur += i64::from(d);
            max = max.max(cur);
        }
        max as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn v2(a: Rational, b: Rational) -> ResourceVec {
        ResourceVec::new(vec![a, b])
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(matches!(
            MdInstance::new(vec![(ResourceVec::zeros(2), rat(0, 1), rat(1, 1))]),
            Err(MdInstanceError::BadSize(0))
        ));
        assert!(matches!(
            MdInstance::new(vec![(v2(rat(1, 2), rat(1, 2)), rat(1, 1), rat(1, 1))]),
            Err(MdInstanceError::EmptyInterval(0))
        ));
        assert!(matches!(
            MdInstance::new(vec![
                (v2(rat(1, 2), rat(1, 2)), rat(0, 1), rat(1, 1)),
                (ResourceVec::scalar(rat(1, 2)), rat(0, 1), rat(1, 1)),
            ]),
            Err(MdInstanceError::DimensionMismatch {
                item: 1,
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn vol_takes_the_max_dimension() {
        let inst = MdInstance::new(vec![
            (v2(rat(1, 2), rat(1, 8)), rat(0, 1), rat(2, 1)), // cpu-heavy
            (v2(rat(1, 8), rat(3, 4)), rat(0, 1), rat(2, 1)), // mem-heavy
        ])
        .unwrap();
        // vol = (5/4, 7/4) → max 7/4.
        assert_eq!(inst.vol_vector().coord(0), rat(5, 4));
        assert_eq!(inst.vol_vector().coord(1), rat(7, 4));
        assert_eq!(inst.vol(), rat(7, 4));
        assert_eq!(inst.span(), rat(2, 1));
        assert_eq!(inst.mu(), Some(rat(1, 1)));
    }

    #[test]
    fn scalar_lift_round_trips() {
        let scalar = dbp_core::Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(1, 3), rat(1, 1), rat(4, 1))
            .build()
            .unwrap();
        let md = MdInstance::from_scalar(&scalar);
        assert_eq!(md.dim(), 1);
        assert_eq!(md.vol(), scalar.vol());
        assert_eq!(md.span(), scalar.span());
        assert_eq!(md.mu(), scalar.mu());
        assert_eq!(md.max_concurrency(), scalar.max_concurrency());
        assert_eq!(md.event_times(), scalar.event_times());
    }
}
