//! The multi-dimensional repacking adversary.
//!
//! `OPT(R, t)` becomes *vector* bin packing at each instant — still
//! solvable exactly by branch and bound for the active-set sizes the
//! experiments use. Lower bound per instant: `max_j ⌈Σ s_j⌉`; upper
//! bound: vector First Fit Decreasing (by max coordinate).

use crate::model::MdInstance;
use crate::vector::ResourceVec;
use dbp_numeric::Rational;

/// `max(max_j vol_j, span)` — the lifted Propositions 1–2 bound.
pub fn md_opt_lower_bound(instance: &MdInstance) -> Rational {
    instance.vol().max(instance.span())
}

/// Exact/bracketed `∫ OPT(R,t) dt` for vector packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdOptTotal {
    /// Certified lower bound.
    pub lower: Rational,
    /// Certified upper bound.
    pub upper: Rational,
}

impl MdOptTotal {
    /// Exact value when the bracket is tight.
    pub fn exact(&self) -> Option<Rational> {
        (self.lower == self.upper).then_some(self.lower)
    }
}

/// Vector First Fit Decreasing (by max coordinate): an upper bound on
/// the instantaneous optimum.
pub fn vector_ffd(sizes: &[ResourceVec]) -> usize {
    let mut sorted: Vec<&ResourceVec> = sizes.iter().collect();
    sorted.sort_by_key(|v| std::cmp::Reverse(v.max_coord()));
    let dim = sizes.first().map(|v| v.dim()).unwrap_or(1);
    let mut bins: Vec<ResourceVec> = Vec::new();
    for s in sorted {
        match bins.iter_mut().find(|lvl| lvl.fits_with(s)) {
            Some(lvl) => *lvl += (*s).clone(),
            None => {
                let mut lvl = ResourceVec::zeros(dim);
                lvl += (*s).clone();
                bins.push(lvl);
            }
        }
    }
    bins.len()
}

/// Per-dimension volume lower bound `max_j ⌈Σ_r s_j(r)⌉`.
pub fn vector_l1(sizes: &[ResourceVec]) -> usize {
    let Some(first) = sizes.first() else { return 0 };
    let mut total = ResourceVec::zeros(first.dim());
    for s in sizes {
        total += s.clone();
    }
    total
        .coords()
        .iter()
        .map(|x| x.ceil().max(0) as usize)
        .max()
        .unwrap_or(0)
}

/// Exact minimum number of unit vector bins, by branch and bound.
pub fn vector_min_bins(sizes: &[ResourceVec], max_exact: usize) -> (usize, usize) {
    if sizes.is_empty() {
        return (0, 0);
    }
    let lb = vector_l1(sizes).max(1);
    let ub = vector_ffd(sizes);
    if lb == ub || sizes.len() > max_exact {
        return (lb, ub);
    }
    // Sort by decreasing max coordinate for effective pruning.
    let mut sorted: Vec<ResourceVec> = sizes.to_vec();
    sorted.sort_by_key(|v| std::cmp::Reverse(v.max_coord()));
    let mut best = ub;
    let mut bins: Vec<ResourceVec> = Vec::new();
    dfs(&sorted, 0, &mut bins, &mut best, lb);
    (best, best)
}

fn dfs(
    items: &[ResourceVec],
    idx: usize,
    bins: &mut Vec<ResourceVec>,
    best: &mut usize,
    lb: usize,
) {
    if *best == lb {
        return;
    }
    if idx == items.len() {
        *best = (*best).min(bins.len());
        return;
    }
    if bins.len() >= *best {
        return;
    }
    let s = &items[idx];
    // Symmetry pruning: bins at identical levels are interchangeable,
    // so try each distinct pre-placement level once.
    let mut tried: Vec<ResourceVec> = Vec::with_capacity(bins.len());
    for b in 0..bins.len() {
        if !bins[b].fits_with(s) || tried.contains(&bins[b]) {
            continue;
        }
        tried.push(bins[b].clone());
        let snapshot = bins[b].clone();
        bins[b] += s.clone();
        dfs(items, idx + 1, bins, best, lb);
        bins[b] = snapshot;
        if *best == lb {
            return;
        }
    }
    if bins.len() + 1 < *best {
        let mut lvl = ResourceVec::zeros(s.dim());
        lvl += s.clone();
        bins.push(lvl);
        dfs(items, idx + 1, bins, best, lb);
        bins.pop();
    }
}

/// `∫ OPT(R, t) dt` via the event-interval profile.
pub fn md_opt_total(instance: &MdInstance, max_exact: usize) -> MdOptTotal {
    let times = instance.event_times();
    let mut lower = Rational::ZERO;
    let mut upper = Rational::ZERO;
    let mut active: Vec<ResourceVec> = Vec::new();
    for w in times.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        active.clear();
        active.extend(
            instance
                .items()
                .iter()
                .filter(|r| r.active_at(lo))
                .map(|r| r.size.clone()),
        );
        if active.is_empty() {
            continue;
        }
        let (lb, ub) = vector_min_bins(&active, max_exact);
        let len = hi - lo;
        lower += Rational::from_int(lb as i128) * len;
        upper += Rational::from_int(ub as i128) * len;
    }
    MdOptTotal { lower, upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn v2(a: i128, b: i128, d: i128) -> ResourceVec {
        ResourceVec::new(vec![rat(a, d), rat(b, d)])
    }

    #[test]
    fn complementary_vectors_pack_together() {
        // (3/4, 1/4) and (1/4, 3/4) fit in one bin; three of each
        // need 3 bins.
        let sizes = vec![
            v2(3, 1, 4),
            v2(1, 3, 4),
            v2(3, 1, 4),
            v2(1, 3, 4),
            v2(3, 1, 4),
            v2(1, 3, 4),
        ];
        let (lb, ub) = vector_min_bins(&sizes, 16);
        assert_eq!((lb, ub), (3, 3));
    }

    #[test]
    fn conflicting_dimension_forces_bins() {
        // Four memory-heavy items (1/8, 2/3): memory admits only one
        // per bin (2/3 + 2/3 > 1), but the volume bound only says
        // ⌈4·2/3⌉ = 3 — the exact search must find 4.
        let sizes: Vec<ResourceVec> = (0..4).map(|_| v2(3, 16, 24)).collect();
        let (lb, ub) = vector_min_bins(&sizes, 16);
        assert_eq!(lb, ub);
        assert_eq!(ub, 4);
    }

    #[test]
    fn l1_takes_worst_dimension() {
        let sizes = vec![v2(1, 6, 8), v2(1, 6, 8)];
        // sums: (1/4, 3/2) → max ceil = 2.
        assert_eq!(vector_l1(&sizes), 2);
        assert!(vector_ffd(&sizes) >= 2);
    }

    #[test]
    fn md_opt_total_simple_profile() {
        let inst = MdInstance::new(vec![
            (v2(3, 1, 4), rat(0, 1), rat(2, 1)),
            (v2(1, 3, 4), rat(0, 1), rat(2, 1)),
            (v2(1, 1, 4), rat(2, 1), rat(5, 1)),
        ])
        .unwrap();
        let opt = md_opt_total(&inst, 16);
        // [0,2): the complementary pair → 1 bin; [2,5): 1 bin.
        assert_eq!(opt.exact(), Some(rat(5, 1)));
        assert_eq!(md_opt_lower_bound(&inst), inst.span());
    }

    #[test]
    fn empty_instance() {
        let inst = MdInstance::new(vec![]).unwrap();
        assert_eq!(md_opt_total(&inst, 8).exact(), Some(Rational::ZERO));
    }
}
