//! Multi-dimensional packing algorithms.
//!
//! The scalar Any-Fit rules lift naturally except that "level" is a
//! vector, so Best/Worst Fit need a scalarization. We provide the
//! two standard ones (sum of coordinates; maximum coordinate is
//! available through [`MdOpenBin::level`] for custom policies) plus
//! vector First Fit and Next Fit.

use crate::engine::MdOpenBin;
use crate::vector::ResourceVec;
use dbp_core::{BinId, ItemId};
use dbp_numeric::Rational;

/// Arrival view: id, demand vector, time — no departure.
#[derive(Debug, Clone)]
pub struct MdArrival {
    /// Arriving item.
    pub item: ItemId,
    /// Demand vector.
    pub size: ResourceVec,
    /// Current time.
    pub time: Rational,
}

/// Placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdPlacement {
    /// Use an open bin.
    Existing(BinId),
    /// Open a fresh bin.
    OpenNew,
}

/// A multi-dimensional online packing algorithm.
pub trait MdAlgorithm {
    /// Display name.
    fn name(&self) -> String;
    /// Clears run state.
    fn reset(&mut self) {}
    /// Placement decision; `bins` is sorted by opening order.
    fn place(&mut self, arrival: &MdArrival, bins: &[MdOpenBin]) -> MdPlacement;
    /// Post-placement notification.
    fn on_placed(&mut self, _item: ItemId, _bin: BinId, _time: Rational) {}
    /// Bin-close notification.
    fn on_bin_closed(&mut self, _bin: BinId, _time: Rational) {}
}

/// Vector First Fit: earliest-opened bin that fits in every
/// dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct MdFirstFit;

impl MdFirstFit {
    /// Creates vector First Fit.
    pub fn new() -> MdFirstFit {
        MdFirstFit
    }
}

impl MdAlgorithm for MdFirstFit {
    fn name(&self) -> String {
        "MdFirstFit".into()
    }
    fn place(&mut self, arrival: &MdArrival, bins: &[MdOpenBin]) -> MdPlacement {
        bins.iter()
            .find(|b| b.fits(&arrival.size))
            .map(|b| MdPlacement::Existing(b.id))
            .unwrap_or(MdPlacement::OpenNew)
    }
}

/// Vector Best Fit, scalarized by the **sum** of level coordinates
/// (ties: earliest opened).
#[derive(Debug, Clone, Copy, Default)]
pub struct MdBestFitBySum;

impl MdBestFitBySum {
    /// Creates sum-scalarized Best Fit.
    pub fn new() -> MdBestFitBySum {
        MdBestFitBySum
    }
}

impl MdAlgorithm for MdBestFitBySum {
    fn name(&self) -> String {
        "MdBestFit[sum]".into()
    }
    fn place(&mut self, arrival: &MdArrival, bins: &[MdOpenBin]) -> MdPlacement {
        let mut best: Option<&MdOpenBin> = None;
        for b in bins.iter().filter(|b| b.fits(&arrival.size)) {
            match best {
                Some(cur) if cur.level.sum() >= b.level.sum() => {}
                _ => best = Some(b),
            }
        }
        best.map(|b| MdPlacement::Existing(b.id))
            .unwrap_or(MdPlacement::OpenNew)
    }
}

/// Vector Worst Fit (sum-scalarized; ties: earliest opened).
#[derive(Debug, Clone, Copy, Default)]
pub struct MdWorstFit;

impl MdWorstFit {
    /// Creates sum-scalarized Worst Fit.
    pub fn new() -> MdWorstFit {
        MdWorstFit
    }
}

impl MdAlgorithm for MdWorstFit {
    fn name(&self) -> String {
        "MdWorstFit[sum]".into()
    }
    fn place(&mut self, arrival: &MdArrival, bins: &[MdOpenBin]) -> MdPlacement {
        let mut worst: Option<&MdOpenBin> = None;
        for b in bins.iter().filter(|b| b.fits(&arrival.size)) {
            match worst {
                Some(cur) if cur.level.sum() <= b.level.sum() => {}
                _ => worst = Some(b),
            }
        }
        worst
            .map(|b| MdPlacement::Existing(b.id))
            .unwrap_or(MdPlacement::OpenNew)
    }
}

/// Vector Next Fit: one available bin, abandoned on first misfit.
#[derive(Debug, Clone, Default)]
pub struct MdNextFit {
    available: Option<BinId>,
}

impl MdNextFit {
    /// Creates vector Next Fit.
    pub fn new() -> MdNextFit {
        MdNextFit::default()
    }
}

impl MdAlgorithm for MdNextFit {
    fn name(&self) -> String {
        "MdNextFit".into()
    }
    fn reset(&mut self) {
        self.available = None;
    }
    fn place(&mut self, arrival: &MdArrival, bins: &[MdOpenBin]) -> MdPlacement {
        if let Some(avail) = self.available {
            if let Some(bin) = bins.iter().find(|b| b.id == avail) {
                if bin.fits(&arrival.size) {
                    return MdPlacement::Existing(avail);
                }
            }
            self.available = None;
        }
        MdPlacement::OpenNew
    }
    fn on_placed(&mut self, _item: ItemId, bin: BinId, _time: Rational) {
        if self.available.is_none() {
            self.available = Some(bin);
        }
    }
    fn on_bin_closed(&mut self, bin: BinId, _time: Rational) {
        if self.available == Some(bin) {
            self.available = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_md_packing;
    use crate::model::MdInstance;
    use dbp_numeric::rat;

    fn v2(a: i128, b: i128, d: i128) -> ResourceVec {
        ResourceVec::new(vec![rat(a, d), rat(b, d)])
    }

    /// Bins at (sum) levels 0.5 and 0.75; a probe that fits both.
    fn scenario() -> MdInstance {
        MdInstance::new(vec![
            (v2(1, 1, 4), rat(0, 1), rat(10, 1)), // b0: sum 1/2
            (v2(3, 3, 8), rat(0, 1), rat(1, 1)),  // forces b1? (1/4+3/8, ...) = (5/8, 5/8) fits b0!
        ])
        .unwrap()
    }

    #[test]
    fn best_and_worst_differ() {
        // Construct explicitly: two long-lived bins at distinct sum
        // levels, then a probe.
        let inst = MdInstance::new(vec![
            (v2(3, 3, 4), rat(0, 1), rat(10, 1)), // b0 sum 3/2
            (v2(3, 3, 4), rat(0, 1), rat(10, 1)), // b1 (can't join b0)
            (v2(1, 0, 8), rat(1, 1), rat(10, 1)), // joins b0 (FF) → b0 sum 3/2+1/8
            (v2(1, 1, 8), rat(2, 1), rat(10, 1)), // probe: fits both
        ])
        .unwrap();
        let ff = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
        let bf = run_md_packing(&inst, &mut MdBestFitBySum::new()).unwrap();
        let wf = run_md_packing(&inst, &mut MdWorstFit::new()).unwrap();
        use dbp_core::ItemId;
        assert_eq!(ff.bin_of(ItemId(3)), Some(dbp_core::BinId(0)));
        assert_eq!(bf.bin_of(ItemId(3)), Some(dbp_core::BinId(0))); // fuller
        assert_eq!(wf.bin_of(ItemId(3)), Some(dbp_core::BinId(1))); // emptier
        let _ = scenario();
    }

    #[test]
    fn next_fit_md_abandons_bins() {
        let inst = MdInstance::new(vec![
            (v2(1, 7, 8), rat(0, 1), rat(10, 1)), // b0 available
            (v2(1, 2, 8), rat(1, 1), rat(10, 1)), // mem 7/8+2/8 > 1 → b1
            (v2(1, 1, 8), rat(2, 1), rat(10, 1)), // fits b0 but unavailable → b1
        ])
        .unwrap();
        let out = run_md_packing(&inst, &mut MdNextFit::new()).unwrap();
        use dbp_core::{BinId, ItemId};
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.bin_of(ItemId(2)), Some(BinId(1)));
        // First Fit would have reused b0.
        let ff = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
        assert_eq!(ff.bin_of(ItemId(2)), Some(BinId(0)));
    }
}
