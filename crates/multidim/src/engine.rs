//! The vector packing engine (multi-dimensional analogue of
//! `dbp_core::engine`).

use crate::algo::{MdAlgorithm, MdArrival, MdPlacement};
use crate::model::MdInstance;
use crate::vector::ResourceVec;
use dbp_core::{BinId, ItemId};
use dbp_numeric::{Interval, Rational};
use dbp_simcore::{EventClass, EventQueue};
use std::fmt;

/// Errors from the vector engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdPackingError {
    /// Placement into a bin that cannot hold the item in some
    /// dimension.
    Infeasible(BinId),
    /// Placement into a bin that is not open.
    NoSuchBin(BinId),
}

impl fmt::Display for MdPackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdPackingError::Infeasible(b) => write!(f, "infeasible placement into {b}"),
            MdPackingError::NoSuchBin(b) => write!(f, "placement into non-open {b}"),
        }
    }
}

impl std::error::Error for MdPackingError {}

/// One open bin as visible to algorithms.
#[derive(Debug, Clone)]
pub struct MdOpenBin {
    /// Identifier (opening rank).
    pub id: BinId,
    /// Opening time.
    pub opened_at: Rational,
    /// Coordinate-wise level.
    pub level: ResourceVec,
    /// Active items.
    pub contents: Vec<(ItemId, ResourceVec)>,
}

impl MdOpenBin {
    /// `true` iff `size` fits coordinate-wise.
    pub fn fits(&self, size: &ResourceVec) -> bool {
        self.level.fits_with(size)
    }
}

/// Completed bin history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdBinRecord {
    /// Bin identifier.
    pub id: BinId,
    /// Usage period.
    pub usage: Interval,
    /// Items ever hosted.
    pub items: Vec<ItemId>,
    /// Peak level reached (coordinate-wise sup of levels over time).
    pub peak_level: ResourceVec,
}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdOutcome {
    algorithm: String,
    bins: Vec<MdBinRecord>,
    assignments: Vec<(ItemId, BinId)>,
    total_usage: Rational,
    max_open_bins: usize,
}

impl MdOutcome {
    /// Algorithm name.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Per-bin histories.
    pub fn bins(&self) -> &[MdBinRecord] {
        &self.bins
    }

    /// `(item, bin)` assignments sorted by item.
    pub fn assignments(&self) -> &[(ItemId, BinId)] {
        &self.assignments
    }

    /// Assignment lookup.
    pub fn bin_of(&self, item: ItemId) -> Option<BinId> {
        self.assignments
            .binary_search_by(|(r, _)| r.cmp(&item))
            .ok()
            .map(|i| self.assignments[i].1)
    }

    /// The objective: total bin usage time.
    pub fn total_usage(&self) -> Rational {
        self.total_usage
    }

    /// Peak simultaneously-open bins.
    pub fn max_open_bins(&self) -> usize {
        self.max_open_bins
    }

    /// Bins opened over the run.
    pub fn bins_opened(&self) -> usize {
        self.bins.len()
    }
}

enum Ev {
    Arrive(ItemId),
    Depart(ItemId),
}

/// Replays a multi-dimensional instance against an algorithm.
///
/// Same tie policy as the scalar engine: departures before arrivals
/// at equal times, item order within a class.
pub fn run_md_packing(
    instance: &MdInstance,
    algo: &mut dyn MdAlgorithm,
) -> Result<MdOutcome, MdPackingError> {
    algo.reset();
    let mut queue: EventQueue<Ev> = EventQueue::with_capacity(instance.len() * 2);
    for item in instance.items() {
        queue.schedule(item.arrival(), EventClass::Arrival, Ev::Arrive(item.id));
        queue.schedule(item.departure(), EventClass::Departure, Ev::Depart(item.id));
    }

    let dim = instance.dim();
    let mut open: Vec<MdOpenBin> = Vec::new();
    let mut open_items: Vec<Vec<ItemId>> = Vec::new(); // parallel: items ever
    let mut open_peaks: Vec<ResourceVec> = Vec::new();
    let mut closed: Vec<MdBinRecord> = Vec::new();
    let mut assignments: Vec<(ItemId, BinId)> = Vec::new();
    let mut next_bin = 0u32;
    let mut max_open = 0usize;

    while let Some(ev) = queue.pop() {
        match ev.payload {
            Ev::Arrive(id) => {
                let item = instance.item(id);
                let arrival = MdArrival {
                    item: id,
                    size: item.size.clone(),
                    time: ev.time,
                };
                let placement = algo.place(&arrival, &open);
                let bin_id = match placement {
                    MdPlacement::Existing(bin_id) => {
                        let idx = open
                            .binary_search_by(|b| b.id.cmp(&bin_id))
                            .map_err(|_| MdPackingError::NoSuchBin(bin_id))?;
                        if !open[idx].fits(&item.size) {
                            return Err(MdPackingError::Infeasible(bin_id));
                        }
                        open[idx].level += item.size.clone();
                        open[idx].contents.push((id, item.size.clone()));
                        open_items[idx].push(id);
                        open_peaks[idx] = open_peaks[idx].sup(&open[idx].level);
                        bin_id
                    }
                    MdPlacement::OpenNew => {
                        let bin_id = BinId(next_bin);
                        next_bin += 1;
                        open.push(MdOpenBin {
                            id: bin_id,
                            opened_at: ev.time,
                            level: item.size.clone(),
                            contents: vec![(id, item.size.clone())],
                        });
                        open_items.push(vec![id]);
                        open_peaks.push(item.size.clone());
                        max_open = max_open.max(open.len());
                        bin_id
                    }
                };
                assignments.push((id, bin_id));
                algo.on_placed(id, bin_id, ev.time);
            }
            Ev::Depart(id) => {
                let item = instance.item(id);
                let idx = open
                    .iter()
                    .position(|b| b.contents.iter().any(|(r, _)| *r == id))
                    .expect("active item must be in an open bin");
                open[idx].level -= item.size.clone();
                let pos = open[idx]
                    .contents
                    .iter()
                    .position(|(r, _)| *r == id)
                    .unwrap();
                open[idx].contents.remove(pos);
                let bin_id = open[idx].id;
                if open[idx].contents.is_empty() {
                    debug_assert_eq!(open[idx].level, ResourceVec::zeros(dim));
                    let bin = open.remove(idx);
                    let items = open_items.remove(idx);
                    let peak = open_peaks.remove(idx);
                    closed.push(MdBinRecord {
                        id: bin.id,
                        usage: Interval::new(bin.opened_at, ev.time),
                        items,
                        peak_level: peak,
                    });
                    algo.on_bin_closed(bin_id, ev.time);
                }
            }
        }
    }

    debug_assert!(open.is_empty());
    closed.sort_by_key(|b| b.id);
    assignments.sort_by_key(|&(r, _)| r);
    let total_usage = closed.iter().map(|b| b.usage.len()).sum();
    Ok(MdOutcome {
        algorithm: algo.name(),
        bins: closed,
        assignments,
        total_usage,
        max_open_bins: max_open,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::MdFirstFit;
    use dbp_numeric::rat;

    fn v2(a: i128, b: i128, d: i128) -> ResourceVec {
        ResourceVec::new(vec![rat(a, d), rat(b, d)])
    }

    #[test]
    fn cpu_and_memory_both_constrain() {
        // Item A: cpu-heavy (3/4, 1/4); item B: (1/4, 1/4) fits with
        // A; item C: (1/8, 7/8) — cpu fits but memory doesn't.
        let inst = MdInstance::new(vec![
            (v2(3, 1, 4), rat(0, 1), rat(4, 1)),
            (v2(1, 1, 4), rat(0, 1), rat(4, 1)),
            (v2(1, 7, 8), rat(0, 1), rat(4, 1)),
        ])
        .unwrap();
        let out = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.bin_of(ItemId(0)), out.bin_of(ItemId(1)));
        assert_ne!(out.bin_of(ItemId(0)), out.bin_of(ItemId(2)));
        assert_eq!(out.total_usage(), rat(8, 1));
        // Peak level of bin 0 is coordinate-wise (1, 1/2).
        assert_eq!(out.bins()[0].peak_level, v2(4, 2, 4));
    }

    #[test]
    fn usage_accounting_matches_scalar_semantics() {
        let inst = MdInstance::new(vec![
            (v2(1, 1, 2), rat(0, 1), rat(2, 1)),
            (v2(1, 1, 2), rat(1, 1), rat(3, 1)),
        ])
        .unwrap();
        let out = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
        // (1/2,1/2)+(1/2,1/2) = (1,1) fits exactly → one bin [0,3).
        assert_eq!(out.bins_opened(), 1);
        assert_eq!(out.total_usage(), rat(3, 1));
        assert_eq!(out.max_open_bins(), 1);
    }

    #[test]
    fn infeasible_md_placement_rejected() {
        struct Bad;
        impl MdAlgorithm for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn place(&mut self, _a: &MdArrival, bins: &[MdOpenBin]) -> MdPlacement {
                bins.first()
                    .map(|b| MdPlacement::Existing(b.id))
                    .unwrap_or(MdPlacement::OpenNew)
            }
        }
        let inst = MdInstance::new(vec![
            (v2(3, 3, 4), rat(0, 1), rat(1, 1)),
            (v2(3, 3, 4), rat(0, 1), rat(1, 1)),
        ])
        .unwrap();
        let err = run_md_packing(&inst, &mut Bad).unwrap_err();
        assert_eq!(err, MdPackingError::Infeasible(BinId(0)));
    }
}
