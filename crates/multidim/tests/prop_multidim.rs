//! Property tests for the multi-dimensional extension.
//!
//! The load-bearing one is `d1_equivalence`: with one dimension the
//! vector engine + vector First Fit must reproduce the scalar
//! reproduction **bit for bit** (same assignments, same usage), so
//! the multi-dimensional results are a conservative extension of the
//! validated scalar system.

use dbp_core::prelude::*;
use dbp_multidim::{
    md_opt_lower_bound, md_opt_total, run_md_packing, MdBestFitBySum, MdFirstFit, MdInstance,
    MdNextFit, MdRandomWorkload, MdWorstFit, ResourceVec,
};
use dbp_numeric::{rat, Rational};
use proptest::prelude::*;

fn scalar_instance_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 1i128..=8, 0i128..=40, 1i128..=12).prop_map(|(num, den, arr4, dur4)| {
        let size = rat(num.min(den), den);
        let arrival = rat(arr4, 4);
        (size, arrival, arrival + rat(dur4, 4))
    });
    prop::collection::vec(item, 1..20).prop_map(|specs| Instance::new(specs).expect("valid"))
}

fn md_instance_strategy(dim: usize) -> impl Strategy<Value = MdInstance> {
    let coord = (1i128..=8, 8i128..=12).prop_map(|(n, d)| rat(n, d));
    let item = (
        prop::collection::vec(coord, dim..=dim),
        0i128..=30,
        1i128..=10,
    )
        .prop_map(|(coords, arr2, dur2)| {
            let arrival = rat(arr2, 2);
            (ResourceVec::new(coords), arrival, arrival + rat(dur2, 2))
        });
    prop::collection::vec(item, 1..16).prop_map(|specs| MdInstance::new(specs).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// d = 1 ⇒ vector First Fit ≡ scalar First Fit, exactly.
    #[test]
    fn d1_equivalence(inst in scalar_instance_strategy()) {
        let scalar = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let lifted = MdInstance::from_scalar(&inst);
        let vector = run_md_packing(&lifted, &mut MdFirstFit::new()).unwrap();
        prop_assert_eq!(scalar.assignments(), vector.assignments());
        prop_assert_eq!(scalar.total_usage(), vector.total_usage());
        prop_assert_eq!(scalar.bins_opened(), vector.bins_opened());
        prop_assert_eq!(scalar.max_open_bins(), vector.max_open_bins());
        // Per-bin usage periods agree too.
        for (s, v) in scalar.bins().iter().zip(vector.bins()) {
            prop_assert_eq!(s.usage, v.usage);
            prop_assert_eq!(&s.items, &v.items);
        }
    }

    /// Universal invariants for every vector algorithm: conservation,
    /// per-dimension feasibility, usage ≥ lifted lower bounds.
    #[test]
    fn md_universal_invariants(inst in md_instance_strategy(2)) {
        let algos: Vec<Box<dyn dbp_multidim::MdAlgorithm>> = vec![
            Box::new(MdFirstFit::new()),
            Box::new(MdBestFitBySum::new()),
            Box::new(MdWorstFit::new()),
            Box::new(MdNextFit::new()),
        ];
        for mut algo in algos {
            let out = run_md_packing(&inst, algo.as_mut()).unwrap();
            prop_assert_eq!(out.assignments().len(), inst.len());

            // Feasibility re-derived from activity, per dimension.
            for t in inst.event_times() {
                for bin in out.bins() {
                    let mut level = ResourceVec::zeros(inst.dim());
                    for id in &bin.items {
                        let item = inst.item(*id);
                        if item.active_at(t) {
                            level += item.size.clone();
                        }
                    }
                    prop_assert!(
                        level.within_unit(),
                        "{}: bin {} at t={} level {}",
                        out.algorithm(), bin.id, t, level
                    );
                }
            }

            // Usage periods hull the members' activity.
            for bin in out.bins() {
                let first = bin.items.iter().map(|id| inst.item(*id).arrival()).min().unwrap();
                let last = bin.items.iter().map(|id| inst.item(*id).departure()).max().unwrap();
                prop_assert_eq!(bin.usage.lo(), first);
                prop_assert_eq!(bin.usage.hi(), last);
            }

            // Lifted Propositions 1–2.
            prop_assert!(out.total_usage() >= md_opt_lower_bound(&inst));
        }
    }

    /// The vector adversary bracket contains every algorithm's cost
    /// and dominates the volume/span bounds.
    #[test]
    fn md_adversary_sandwich(inst in md_instance_strategy(2)) {
        let opt = md_opt_total(&inst, 14);
        prop_assert!(opt.lower <= opt.upper);
        prop_assert!(Rational::max(inst.vol(), inst.span()) <= opt.upper);
        let out = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
        prop_assert!(out.total_usage() >= opt.lower);
        // The scalar-style Theorem 1 *shape* (not proved for d > 1,
        // measured here as an observation): FF within (µ+4)·d of the
        // adversary upper bound on these small instances.
        if let (Some(mu), Some(exact)) = (inst.mu(), opt.exact()) {
            if exact.is_positive() {
                let ratio = out.total_usage() / exact;
                let generous = (mu + rat(4, 1)) * rat(inst.dim() as i128, 1);
                prop_assert!(ratio <= generous, "ratio {} vs generous bound {}", ratio, generous);
            }
        }
    }

    /// Deterministic replay for the vector engine.
    #[test]
    fn md_runs_are_deterministic(inst in md_instance_strategy(3)) {
        let a = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
        let b = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn cpu_mem_workload_end_to_end() {
    let inst = MdRandomWorkload::cpu_mem(80, rat(4, 1), 11).generate();
    let ff = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
    let nf = run_md_packing(&inst, &mut MdNextFit::new()).unwrap();
    assert!(ff.total_usage() <= nf.total_usage(), "FF should beat NF");
    let opt = md_opt_total(&inst, 12);
    assert!(ff.total_usage() >= opt.lower);
}
