//! Adversarial instance *search*: simulated annealing on top of the
//! exact adversary.
//!
//! The §VIII constructions ([`crate::adversarial`]) are closed-form
//! lower bounds; this module asks the complementary empirical
//! question — *how bad can First Fit actually be made at a given
//! `µ`?* — by hill-climbing over concrete instances with the measured
//! `FF / OPT_total` ratio as the objective. The ratio is certified:
//! each candidate is scored as `FF_total / OPT_upper` (the
//! pessimistic side of the adversary bracket from
//! [`dbp_analysis::measure_ratio_with`]), so every reported ratio is
//! a true lower bound on the achieved ratio even when an interval
//! solve degrades to a bracket.
//!
//! The search is warm-started from the paper's gadgets (the Any-Fit
//! gap-ladder and the §VIII pair construction) rather than random
//! noise: annealing then *perturbs a known-bad instance*, which in
//! practice discovers sharper finite-size variants the closed forms
//! miss. One [`dbp_analysis::ExactBinPacking`] solver is shared
//! across the entire run, so the thousands of candidate evaluations
//! feed a single canonical memo — most interval solves after the
//! first few hundred candidates are memo hits.
//!
//! Every run is deterministic in `SearchConfig` (seeded RNG, exact
//! arithmetic objective).

use dbp_analysis::ratio::measure_ratio_with;
use dbp_analysis::{ExactBinPacking, OptConfig};
use dbp_core::prelude::*;
use dbp_core::Instance;
use dbp_numeric::{rat, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One mutable item of the search state: `(size, arrival, duration)`.
/// Departure is `arrival + duration`, so retiming an item never
/// changes its duration (and hence never changes `µ` by accident).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ItemSpec {
    size: Rational,
    arrival: Rational,
    duration: Rational,
}

/// Tuning for one annealing run.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Target duration ratio; candidates whose realized `µ` differs
    /// are rejected outright, so the reported ratio is honestly
    /// attributable to this `µ`.
    pub mu: u32,
    /// Denominator grid that mutated sizes snap to. Warm-start items
    /// keep their off-grid gadget sizes until a resize move hits
    /// them.
    pub grid: i128,
    /// Item-count ceiling (clone moves respect it).
    pub max_items: usize,
    /// Annealing steps per warm start.
    pub iterations: u32,
    /// RNG seed; the whole search is a pure function of the config.
    pub seed: u64,
    /// Per-interval branch-and-bound node budget for the adversary.
    pub node_budget: u64,
}

impl SearchConfig {
    /// Defaults tuned for sub-second searches at a given `µ`.
    pub fn for_mu(mu: u32) -> SearchConfig {
        SearchConfig {
            mu,
            grid: 12,
            max_items: 24,
            iterations: 300,
            seed: 0x5EED,
            node_budget: 200_000,
        }
    }

    /// Returns the config with a different seed (for restarts).
    pub fn with_seed(self, seed: u64) -> SearchConfig {
        SearchConfig { seed, ..self }
    }
}

/// The outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The target (and realized) duration ratio.
    pub mu: u32,
    /// The best instance found.
    pub best: Instance,
    /// Certified `FF / OPT_total` lower bound achieved by [`Self::best`].
    pub best_ratio: Rational,
    /// The warm-start family the winner descends from.
    pub start_family: &'static str,
    /// Candidate instances evaluated (including rejected ones).
    pub evaluations: u32,
    /// Accepted moves across all chains.
    pub accepted: u32,
}

impl SearchReport {
    /// The ratio as a float, for tables.
    pub fn ratio_f64(&self) -> f64 {
        self.best_ratio.to_f64()
    }
}

/// Scores an instance: certified lower bound on `FF_total / OPT_total`
/// (i.e. `cost / OPT_upper`). `None` when the instance is degenerate
/// (empty, zero-cost) or its realized `µ` misses the target.
fn score(
    specs: &[ItemSpec],
    mu: u32,
    solver: &ExactBinPacking,
    opt: OptConfig,
) -> Option<(Instance, Rational)> {
    let triples: Vec<(Rational, Rational, Rational)> = specs
        .iter()
        .map(|s| (s.size, s.arrival, s.arrival + s.duration))
        .collect();
    let instance = Instance::new(triples).ok()?;
    if instance.mu() != Some(rat(mu as i128, 1)) {
        return None;
    }
    let outcome = Runner::new(&instance).run(&mut FirstFit::new()).ok()?;
    let report = measure_ratio_with(&instance, &outcome, solver, opt);
    let ratio = report.ratio_lower?;
    Some((instance, ratio))
}

/// Extracts the mutable spec list from a gadget instance.
fn specs_of(instance: &Instance) -> Vec<ItemSpec> {
    instance
        .items()
        .iter()
        .map(|it| ItemSpec {
            size: it.size,
            arrival: it.arrival(),
            duration: it.duration(),
        })
        .collect()
}

/// Applies one random mutation, returning the candidate state.
fn mutate(specs: &[ItemSpec], config: &SearchConfig, rng: &mut StdRng) -> Vec<ItemSpec> {
    let mut next = specs.to_vec();
    let i = rng.gen_range(0..next.len());
    match rng.gen_range(0..6u8) {
        // Resize onto the grid.
        0 => {
            next[i].size = rat(rng.gen_range(1..=config.grid), config.grid);
        }
        // Retime by a quarter/half/whole step (clamped at 0).
        1 => {
            let step = rat(1, [4, 2, 1][rng.gen_range(0..3usize)]);
            next[i].arrival = if rng.gen::<f64>() < 0.5 {
                next[i].arrival + step
            } else if next[i].arrival >= step {
                next[i].arrival - step
            } else {
                Rational::ZERO
            };
        }
        // Toggle the duration between the two µ-defining extremes.
        2 => {
            next[i].duration = if rng.gen::<f64>() < 0.5 {
                Rational::ONE
            } else {
                rat(config.mu as i128, 1)
            };
        }
        // Clone an item (the classic way to sharpen a gadget).
        3 if next.len() < config.max_items => {
            let copy = next[i].clone();
            next.push(copy);
        }
        // Delete an item.
        4 if next.len() > 2 => {
            next.swap_remove(i);
        }
        // Swap the sizes of two items (preserves total volume).
        _ => {
            let j = rng.gen_range(0..next.len());
            let tmp = next[i].size;
            next[i].size = next[j].size;
            next[j].size = tmp;
        }
    }
    next
}

/// Runs simulated annealing at the given `µ`, warm-started from the
/// paper's constructions, and returns the best instance found.
///
/// The acceptance rule is standard Metropolis on the float ratio with
/// a geometric temperature schedule; the *best-ever* state is tracked
/// separately in exact arithmetic, so annealing noise never loses the
/// winner.
pub fn anneal_first_fit(config: SearchConfig) -> SearchReport {
    assert!(config.mu >= 1, "µ ≥ 1");
    assert!(config.max_items >= 4, "need room to mutate");
    let solver = ExactBinPacking::new();
    let opt = OptConfig {
        node_budget: config.node_budget,
        ..OptConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(config.seed ^ (config.mu as u64) << 32);

    // Warm starts sized to fit under max_items: the gap-ladder drives
    // any Any-Fit algorithm to µ+1, the §VIII pairs drive Next Fit
    // (and annoy First Fit too).
    let ladder_n = (config.max_items / 2).clamp(2, 8) as u32;
    let pairs_n = (config.max_items / 2).clamp(3, 6) as u32;
    let starts: Vec<(&'static str, Instance)> = vec![
        (
            "any-fit-ladder",
            crate::adversarial::any_fit_ladder(ladder_n, config.mu).0,
        ),
        (
            "next-fit-pairs",
            crate::adversarial::next_fit_pairs(pairs_n, config.mu).0,
        ),
    ];

    let mut evaluations = 0u32;
    let mut accepted = 0u32;
    let mut best: Option<(Instance, Rational, &'static str)> = None;

    for (family, start) in starts {
        let mut cur = specs_of(&start);
        evaluations += 1;
        let Some((inst0, r0)) = score(&cur, config.mu, &solver, opt) else {
            // A gadget that misses the target µ (only µ = 1 ladders
            // can) is skipped rather than searched.
            continue;
        };
        let mut cur_ratio = r0.to_f64();
        if best.as_ref().map(|(_, b, _)| r0 > *b).unwrap_or(true) {
            best = Some((inst0, r0, family));
        }
        let (t0, t1) = (0.15f64, 0.01f64);
        for step in 0..config.iterations {
            let temp = t0 * (t1 / t0).powf(step as f64 / config.iterations.max(1) as f64);
            let cand = mutate(&cur, &config, &mut rng);
            evaluations += 1;
            let Some((inst, ratio)) = score(&cand, config.mu, &solver, opt) else {
                continue; // µ-mismatched or degenerate: reject.
            };
            let r = ratio.to_f64();
            let accept = r >= cur_ratio || rng.gen::<f64>() < ((r - cur_ratio) / temp).exp();
            if accept {
                cur = cand;
                cur_ratio = r;
                accepted += 1;
                if best.as_ref().map(|(_, b, _)| ratio > *b).unwrap_or(true) {
                    best = Some((inst, ratio, family));
                }
            }
        }
    }

    let (best, best_ratio, start_family) =
        best.expect("at least one warm start realizes the target µ");
    SearchReport {
        mu: config.mu,
        best,
        best_ratio,
        start_family,
        evaluations,
        accepted,
    }
}

/// The random-search baseline the annealer must beat: the maximum
/// certified `FF / OPT_total` over `seeds` sharp-`µ` random workloads
/// of `n` items ([`crate::random::RandomWorkload::with_sharp_mu`]).
pub fn random_max_ratio(mu: u32, n: usize, seeds: u64, node_budget: u64) -> Rational {
    let solver = ExactBinPacking::new();
    let opt = OptConfig {
        node_budget,
        ..OptConfig::default()
    };
    let mut best = Rational::ZERO;
    for seed in 0..seeds {
        let inst =
            crate::random::RandomWorkload::with_sharp_mu(n, rat(mu as i128, 1), seed).generate();
        let Ok(out) = Runner::new(&inst).run(&mut FirstFit::new()) else {
            continue;
        };
        let report = measure_ratio_with(&inst, &out, &solver, opt);
        if let Some(r) = report.ratio_lower {
            if r > best {
                best = r;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_is_deterministic() {
        let config = SearchConfig {
            iterations: 40,
            max_items: 12,
            ..SearchConfig::for_mu(2)
        };
        let a = anneal_first_fit(config);
        let b = anneal_first_fit(config);
        assert_eq!(a.best_ratio, b.best_ratio);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.best.items().len(), b.best.items().len());
    }

    #[test]
    fn search_never_loses_its_warm_start() {
        // The best-ever tracking means the result is at least as bad
        // (for First Fit) as the better of the two gadget starts.
        let config = SearchConfig {
            iterations: 30,
            max_items: 12,
            ..SearchConfig::for_mu(4)
        };
        let report = anneal_first_fit(config);
        assert_eq!(report.mu, 4);
        assert_eq!(report.best.mu(), Some(rat(4, 1)));
        // The µ=4 gap-ladder certifies a ratio well above 2 even at
        // small n; the search can only improve on its starts.
        assert!(report.best_ratio > rat(2, 1), "got {}", report.best_ratio);
    }

    #[test]
    fn mu_mismatch_states_are_rejected() {
        // Every accepted state — in particular the winner — realizes
        // the target µ exactly.
        let config = SearchConfig {
            iterations: 25,
            max_items: 10,
            ..SearchConfig::for_mu(3)
        };
        let report = anneal_first_fit(config);
        assert_eq!(report.best.mu(), Some(rat(3, 1)));
    }

    #[test]
    fn random_baseline_is_finite_and_positive() {
        let r = random_max_ratio(2, 10, 3, 50_000);
        assert!(r > Rational::ZERO);
        // Certified ratio can't exceed the Theorem 1 bound µ + 4.
        assert!(r <= rat(6, 1));
    }
}
