//! Seeded random instance generators over an exact rational grid.
//!
//! All sampled quantities are integer multiples of `1/grid`, so
//! generated instances stay inside the exact-arithmetic fast path and
//! runs are bit-reproducible from the seed.

use dbp_core::Instance;
use dbp_numeric::{rat, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Item size distribution.
#[derive(Debug, Clone)]
pub enum SizeDist {
    /// Uniform on the grid over `(0, max]`.
    Uniform {
        /// Largest size (inclusive), in `(0, 1]`.
        max: Rational,
    },
    /// A weighted set of discrete sizes (e.g. VM flavours).
    Classes(Vec<(Rational, u32)>),
}

/// Item duration distribution (controls `µ`).
#[derive(Debug, Clone)]
pub enum DurationDist {
    /// Uniform on the grid over `[min, max]`.
    Uniform {
        /// Shortest duration.
        min: Rational,
        /// Longest duration.
        max: Rational,
    },
    /// Exactly two durations — gives a *sharp* `µ = long/short` with
    /// probability `p_long_percent`% of drawing the long one.
    TwoPoint {
        /// The short duration (defines `d_min`).
        short: Rational,
        /// The long duration (defines `d_max`).
        long: Rational,
        /// Percent chance of the long duration.
        p_long_percent: u32,
    },
}

/// Arrival process.
#[derive(Debug, Clone)]
pub enum ArrivalDist {
    /// Arrivals uniform on `[0, horizon)`.
    Uniform {
        /// End of the arrival window.
        horizon: Rational,
    },
    /// Geometric inter-arrival gaps on the grid with mean `mean_gap`
    /// (a discrete stand-in for Poisson arrivals).
    Poissonish {
        /// Mean gap between consecutive arrivals.
        mean_gap: Rational,
    },
    /// Flash crowds: items land in `bursts` simultaneous-arrival
    /// waves spaced `spacing` apart (each item joins a uniformly
    /// chosen wave). The regime with maximal tie-breaking pressure —
    /// exactly how the paper's gadgets arrive ("let n pairs arrive in
    /// sequence").
    Bursty {
        /// Number of waves.
        bursts: u32,
        /// Time between consecutive waves.
        spacing: Rational,
    },
}

/// A reproducible random workload specification.
///
/// ```
/// use dbp_workloads::RandomWorkload;
/// use dbp_numeric::rat;
///
/// let inst = RandomWorkload::with_mu(100, rat(4, 1), 42).generate();
/// assert_eq!(inst.len(), 100);
/// let mu = inst.mu().unwrap();
/// assert!(mu <= rat(4, 1));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWorkload {
    /// Number of items.
    pub n: usize,
    /// RNG seed (fully determines the instance).
    pub seed: u64,
    /// Grid denominator for all sampled quantities.
    pub grid: i128,
    /// Size distribution.
    pub sizes: SizeDist,
    /// Duration distribution.
    pub durations: DurationDist,
    /// Arrival process.
    pub arrivals: ArrivalDist,
}

impl RandomWorkload {
    /// A balanced default: sizes uniform on `(0, 1]`, durations
    /// uniform on `[1, mu]` (so the instance's `µ ≤ mu`), arrivals
    /// uniform over a horizon scaled to keep moderate concurrency.
    pub fn with_mu(n: usize, mu: Rational, seed: u64) -> RandomWorkload {
        RandomWorkload {
            n,
            seed,
            grid: 16,
            sizes: SizeDist::Uniform { max: Rational::ONE },
            durations: DurationDist::Uniform {
                min: Rational::ONE,
                max: mu,
            },
            arrivals: ArrivalDist::Uniform {
                horizon: rat(n as i128 / 4 + 1, 1),
            },
        }
    }

    /// Same but with a sharp two-point duration law, guaranteeing the
    /// instance's `µ` equals `mu` exactly (for n large enough to draw
    /// both).
    pub fn with_sharp_mu(n: usize, mu: Rational, seed: u64) -> RandomWorkload {
        RandomWorkload {
            durations: DurationDist::TwoPoint {
                short: Rational::ONE,
                long: mu,
                p_long_percent: 50,
            },
            ..RandomWorkload::with_mu(n, mu, seed)
        }
    }

    /// Caps all sizes at `1/beta` (the §I bounded-size regime of E6).
    pub fn capped_sizes(mut self, beta: u32) -> RandomWorkload {
        self.sizes = SizeDist::Uniform {
            max: rat(1, beta as i128),
        };
        self
    }

    /// Generates the instance.
    pub fn generate(&self) -> Instance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut specs = Vec::with_capacity(self.n);
        let mut clock = Rational::ZERO; // for Poissonish arrivals
        for _ in 0..self.n {
            let size = self.sample_size(&mut rng);
            let arrival = self.sample_arrival(&mut rng, &mut clock);
            let duration = self.sample_duration(&mut rng);
            specs.push((size, arrival, arrival + duration));
        }
        Instance::new(specs).expect("generator produces valid specs")
    }

    /// Samples a rational uniformly from the grid points in
    /// `[lo, hi]` (inclusive).
    fn grid_uniform(&self, rng: &mut StdRng, lo: Rational, hi: Rational) -> Rational {
        let lo_steps = (lo * rat(self.grid, 1)).ceil();
        let hi_steps = (hi * rat(self.grid, 1)).floor();
        debug_assert!(lo_steps <= hi_steps, "empty grid range [{lo}, {hi}]");
        let steps = rng.gen_range(lo_steps..=hi_steps);
        rat(steps, self.grid)
    }

    fn sample_size(&self, rng: &mut StdRng) -> Rational {
        match &self.sizes {
            SizeDist::Uniform { max } => self.grid_uniform(rng, rat(1, self.grid), *max),
            SizeDist::Classes(classes) => {
                let total: u32 = classes.iter().map(|(_, w)| *w).sum();
                let mut pick = rng.gen_range(0..total);
                for (size, w) in classes {
                    if pick < *w {
                        return *size;
                    }
                    pick -= w;
                }
                unreachable!("weights sum checked above")
            }
        }
    }

    fn sample_duration(&self, rng: &mut StdRng) -> Rational {
        match &self.durations {
            DurationDist::Uniform { min, max } => self.grid_uniform(rng, *min, *max),
            DurationDist::TwoPoint {
                short,
                long,
                p_long_percent,
            } => {
                if rng.gen_range(0..100) < *p_long_percent {
                    *long
                } else {
                    *short
                }
            }
        }
    }

    fn sample_arrival(&self, rng: &mut StdRng, clock: &mut Rational) -> Rational {
        match &self.arrivals {
            ArrivalDist::Uniform { horizon } => self.grid_uniform(rng, Rational::ZERO, *horizon),
            ArrivalDist::Poissonish { mean_gap } => {
                // Geometric number of grid steps with the right mean.
                let mean_steps = (*mean_gap * rat(self.grid, 1)).to_f64().max(1.0);
                let p = 1.0 / mean_steps;
                let mut steps = 0i128;
                while rng.gen::<f64>() > p && steps < 64 * self.grid {
                    steps += 1;
                }
                *clock += rat(steps, self.grid);
                *clock
            }
            ArrivalDist::Bursty { bursts, spacing } => {
                let wave = rng.gen_range(0..(*bursts).max(1));
                *spacing * rat(wave as i128, 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let w = RandomWorkload::with_mu(50, rat(8, 1), 7);
        assert_eq!(w.generate(), w.generate());
        let w2 = RandomWorkload::with_mu(50, rat(8, 1), 8);
        assert_ne!(w.generate(), w2.generate());
    }

    #[test]
    fn mu_is_bounded_by_config() {
        for seed in 0..10 {
            let inst = RandomWorkload::with_mu(40, rat(6, 1), seed).generate();
            let mu = inst.mu().unwrap();
            assert!(mu <= rat(6, 1), "µ = {mu}");
            assert!(mu >= Rational::ONE);
        }
    }

    #[test]
    fn sharp_mu_hits_exactly() {
        let inst = RandomWorkload::with_sharp_mu(200, rat(5, 1), 3).generate();
        assert_eq!(inst.mu(), Some(rat(5, 1)));
        for item in inst.items() {
            let d = item.duration();
            assert!(d == Rational::ONE || d == rat(5, 1));
        }
    }

    #[test]
    fn capped_sizes_respect_beta() {
        let inst = RandomWorkload::with_mu(80, rat(2, 1), 1)
            .capped_sizes(4)
            .generate();
        for item in inst.items() {
            assert!(item.size <= rat(1, 4));
            assert!(item.size.is_positive());
        }
    }

    #[test]
    fn class_sizes_draw_from_the_set() {
        let mut w = RandomWorkload::with_mu(60, rat(2, 1), 9);
        w.sizes = SizeDist::Classes(vec![(rat(1, 4), 3), (rat(1, 2), 1)]);
        let inst = w.generate();
        let quarters = inst.items().iter().filter(|r| r.size == rat(1, 4)).count();
        let halves = inst.items().iter().filter(|r| r.size == rat(1, 2)).count();
        assert_eq!(quarters + halves, 60);
        assert!(quarters > halves, "3:1 weighting should show");
    }

    #[test]
    fn bursty_arrivals_land_on_waves() {
        let mut w = RandomWorkload::with_mu(120, rat(2, 1), 13);
        w.arrivals = ArrivalDist::Bursty {
            bursts: 4,
            spacing: rat(5, 1),
        };
        let inst = w.generate();
        let allowed: Vec<Rational> = (0..4).map(|i| rat(5 * i, 1)).collect();
        for item in inst.items() {
            assert!(
                allowed.contains(&item.arrival()),
                "stray arrival {}",
                item.arrival()
            );
        }
        // Every wave gets some traffic at this n.
        for t in &allowed {
            assert!(
                inst.items().iter().any(|r| r.arrival() == *t),
                "empty wave at {t}"
            );
        }
    }

    #[test]
    fn poissonish_arrivals_are_nondecreasing_per_draw_order() {
        let mut w = RandomWorkload::with_mu(100, rat(3, 1), 11);
        w.arrivals = ArrivalDist::Poissonish {
            mean_gap: rat(1, 2),
        };
        let inst = w.generate();
        // Items were generated in arrival order.
        for pair in inst.items().windows(2) {
            assert!(pair[0].arrival() <= pair[1].arrival());
        }
    }
}
