//! Adaptive adversaries: lower-bound games with departures chosen
//! *after* observing placements.
//!
//! The oblivious gadgets of [`crate::adversarial`] fix every arrival
//! and departure in advance. The lower-bound proofs the paper cites
//! (\[6\], \[12\]) are stronger: the adversary releases items online and
//! **decides departure times adaptively**, reacting to where the
//! algorithm put things — which is legal precisely because departure
//! times are unknown to the algorithm at placement time.
//!
//! [`play`] runs that game on the real packing engine: the adversary
//! issues [`Move`]s (release an item now, advance the clock, depart a
//! specific item, finish), observing the live bin state after every
//! step. The realized arrivals/departures are then assembled into an
//! ordinary [`Instance`] so the exact repacking adversary can price
//! the run.
//!
//! [`KeepSmallestAdversary`] implements the classic strategy behind
//! the universal `µ` bound: release exactly-filling pairs, then keep
//! alive the smallest *small* resident of every open bin until `µ`
//! while departing everything else at time 1 — any algorithm that let
//! a small item share a bin with short-lived cargo pays `µ` for that
//! bin; size-segregating algorithms escape, which the experiment
//! (E14) reports honestly.

use dbp_core::{BinId, Instance, ItemId, PackingAlgorithm, PackingEngine, PackingError};
use dbp_numeric::{rat, Rational};
use std::collections::BTreeMap;

/// A move in the adversary game.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Move {
    /// Release an item of the given size at the current time.
    Release {
        /// Item size in `(0, 1]`.
        size: Rational,
    },
    /// Advance the clock to `to` (must not go backwards).
    Advance {
        /// New current time.
        to: Rational,
    },
    /// Depart a specific live item at the current time.
    Depart {
        /// The item to retire.
        item: ItemId,
    },
    /// End the game (all live items depart now).
    Finish,
}

/// What the adversary sees between moves.
#[derive(Debug, Clone)]
pub struct GameView {
    /// Current time.
    pub now: Rational,
    /// Live items: `(item, size, bin)` in id order.
    pub live: Vec<(ItemId, Rational, BinId)>,
}

impl GameView {
    /// Groups the live items by bin.
    pub fn by_bin(&self) -> BTreeMap<BinId, Vec<(ItemId, Rational)>> {
        let mut map: BTreeMap<BinId, Vec<(ItemId, Rational)>> = BTreeMap::new();
        for &(item, size, bin) in &self.live {
            map.entry(bin).or_default().push((item, size));
        }
        map
    }
}

/// An adaptive adversary: produces the next move given the view.
pub trait AdaptiveAdversary {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
    /// The next move. Must eventually return [`Move::Finish`].
    fn next_move(&mut self, view: &GameView) -> Move;
}

/// The realized game: the instance the adversary ended up
/// constructing, and the algorithm's outcome on it.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// The realized instance (arrivals/departures as they happened).
    pub instance: Instance,
    /// The algorithm's usage time.
    pub algorithm_cost: Rational,
    /// Bins the algorithm opened.
    pub bins_opened: usize,
}

/// Runs the game. `max_moves` bounds runaway strategies.
///
/// # Panics
/// Panics if the adversary exceeds `max_moves` without finishing or
/// issues an illegal move (departing a dead item, reversing time,
/// releasing a size outside `(0, 1]`).
pub fn play(
    adversary: &mut dyn AdaptiveAdversary,
    algo: &mut dyn PackingAlgorithm,
    max_moves: usize,
) -> Result<GameResult, PackingError> {
    algo.reset();
    let mut engine = PackingEngine::new();
    let mut now = Rational::ZERO;
    let mut next_id = 0u32;
    // (size, arrival, departure once known)
    let mut births: Vec<(Rational, Rational)> = Vec::new();
    let mut deaths: Vec<Option<Rational>> = Vec::new();
    let mut live: Vec<(ItemId, Rational, BinId)> = Vec::new();

    for _ in 0..max_moves {
        let view = GameView {
            now,
            live: live.clone(),
        };
        match adversary.next_move(&view) {
            Move::Release { size } => {
                assert!(
                    size.is_positive() && size <= Rational::ONE,
                    "adversary released invalid size {size}"
                );
                let id = ItemId(next_id);
                next_id += 1;
                let bin = engine.arrive(algo, id, size, now)?;
                births.push((size, now));
                deaths.push(None);
                live.push((id, size, bin));
            }
            Move::Advance { to } => {
                assert!(to >= now, "adversary reversed time");
                now = to;
            }
            Move::Depart { item } => {
                let pos = live
                    .iter()
                    .position(|(r, _, _)| *r == item)
                    .expect("adversary departed a dead item");
                live.remove(pos);
                // Guard against zero-length intervals: nudge forward.
                let arrival = births[item.index()].1;
                assert!(now > arrival, "adversary departed an item instantly");
                deaths[item.index()] = Some(now);
                engine.depart(algo, item, now)?;
            }
            Move::Finish => {
                // Everything still alive departs now (or just after,
                // for same-instant arrivals).
                let mut t = now;
                for &(item, _, _) in &live {
                    let arrival = births[item.index()].1;
                    if t <= arrival {
                        t = arrival + rat(1, 1_000_000);
                    }
                    deaths[item.index()] = Some(t);
                    engine.depart(algo, item, t)?;
                }
                let outcome = engine.finish(&algo.name())?;
                let specs: Vec<(Rational, Rational, Rational)> = births
                    .iter()
                    .zip(&deaths)
                    .map(|(&(size, arr), dep)| (size, arr, dep.expect("all items departed")))
                    .collect();
                let instance = Instance::new(specs).expect("realized instance is valid");
                return Ok(GameResult {
                    instance,
                    algorithm_cost: outcome.total_usage(),
                    bins_opened: outcome.bins_opened(),
                });
            }
        }
    }
    panic!("adversary did not finish within {max_moves} moves");
}

/// The keep-smallest strategy behind the universal `µ` bound.
///
/// Phase 1 (t = 0): release `k` pairs — a large item `1 − 1/m`
/// followed by a tiny `1/m` (`m ≥ k`).
/// Phase 2 (t = 1): in every open bin, keep the smallest resident
/// *if it is small* (`< 1/2`) and depart everything else.
/// Phase 3 (t = µ): finish.
#[derive(Debug, Clone)]
pub struct KeepSmallestAdversary {
    /// Pair count.
    pub k: u32,
    /// Tiny size denominator (`m ≥ k`).
    pub m: u32,
    /// Final horizon (the duration ratio the game realizes).
    pub mu: u32,
    released: u32,
    phase: u8,
    pending_departures: Vec<ItemId>,
}

impl KeepSmallestAdversary {
    /// Creates the strategy.
    pub fn new(k: u32, mu: u32) -> KeepSmallestAdversary {
        KeepSmallestAdversary {
            k,
            m: k.max(4),
            mu: mu.max(2),
            released: 0,
            phase: 0,
            pending_departures: Vec::new(),
        }
    }
}

impl AdaptiveAdversary for KeepSmallestAdversary {
    fn name(&self) -> &'static str {
        "keep-smallest"
    }

    fn next_move(&mut self, view: &GameView) -> Move {
        match self.phase {
            // Phase 0: release the 2k items at t = 0.
            0 => {
                if self.released < 2 * self.k {
                    let i = self.released;
                    self.released += 1;
                    let size = if i.is_multiple_of(2) {
                        Rational::ONE - rat(1, self.m as i128)
                    } else {
                        rat(1, self.m as i128)
                    };
                    Move::Release { size }
                } else {
                    self.phase = 1;
                    Move::Advance { to: Rational::ONE }
                }
            }
            // Phase 1: decide, once, who dies at t = 1.
            1 => {
                if self.pending_departures.is_empty() {
                    for (_, residents) in view.by_bin() {
                        let keeper = residents
                            .iter()
                            .min_by_key(|(_, size)| *size)
                            .filter(|(_, size)| *size < Rational::HALF)
                            .map(|(item, _)| *item);
                        for (item, _) in residents {
                            if Some(item) != keeper {
                                self.pending_departures.push(item);
                            }
                        }
                    }
                    // Reverse so pop() departs in id order.
                    self.pending_departures.sort();
                    self.pending_departures.reverse();
                }
                match self.pending_departures.pop() {
                    Some(item) => Move::Depart { item },
                    None => {
                        self.phase = 2;
                        Move::Advance {
                            to: rat(self.mu as i128, 1),
                        }
                    }
                }
            }
            // Phase 2: horizon reached.
            _ => Move::Finish,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_analysis::measure_ratio;
    use dbp_core::{
        BestFit, DepartureAlignedFit, FirstFit, HybridFirstFit, NextFit, Runner, WorstFit,
    };

    #[test]
    fn adaptive_game_forces_any_fit_to_mu() {
        let mu = 5u32;
        let k = 10u32;
        for mut algo in [
            Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            Box::new(BestFit::new()),
            Box::new(WorstFit::new()),
            Box::new(NextFit::new()),
        ] {
            let mut adv = KeepSmallestAdversary::new(k, mu);
            let result = play(&mut adv, algo.as_mut(), 10_000).unwrap();
            // Every pair filled one bin; each bin keeps a tiny till µ.
            assert_eq!(result.bins_opened, k as usize);
            assert_eq!(
                result.algorithm_cost,
                rat((k * mu) as i128, 1),
                "algorithm should pay kµ"
            );
            // Realized instance prices close to µ against exact OPT.
            let rerun = Runner::new(&result.instance).run(algo.as_mut()).unwrap();
            assert_eq!(
                rerun.total_usage(),
                result.algorithm_cost,
                "replay consistent"
            );
            let rep = measure_ratio(&result.instance, &rerun);
            let ratio = rep.exact_ratio().unwrap();
            assert!(
                ratio > rat(3, 1),
                "adaptive ratio {ratio} too small for µ = 5"
            );
        }
    }

    #[test]
    fn size_segregation_escapes_the_adversary() {
        let mut adv = KeepSmallestAdversary::new(10, 5);
        let mut hff = HybridFirstFit::classic();
        let result = play(&mut adv, &mut hff, 10_000).unwrap();
        // Large bins contain no small item → everything there departs
        // at 1; only the shared tiny bin lives to µ.
        let rerun = Runner::new(&result.instance)
            .run(&mut HybridFirstFit::classic())
            .unwrap();
        let rep = measure_ratio(&result.instance, &rerun);
        let ratio = rep.exact_ratio().or(rep.ratio_upper).unwrap();
        assert!(ratio < rat(3, 2), "HFF should escape, got {ratio}");
    }

    #[test]
    fn clairvoyant_cannot_be_adaptively_trapped_here() {
        // DepartureAlignedFit needs departures up front, which an
        // adaptive game cannot provide honestly — so we evaluate it
        // on the *realized* instance instead (it sees the adversary's
        // final choices): it reconstructs near-optimal cost.
        let mut adv = KeepSmallestAdversary::new(8, 6);
        let mut probe = FirstFit::new();
        let result = play(&mut adv, &mut probe, 10_000).unwrap();
        let mut cv = DepartureAlignedFit::new(&result.instance);
        let out = Runner::new(&result.instance).run(&mut cv).unwrap();
        assert!(
            out.total_usage() < result.algorithm_cost,
            "clairvoyant {} !< online {}",
            out.total_usage(),
            result.algorithm_cost
        );
    }

    #[test]
    fn illegal_moves_are_caught() {
        struct Reverser(u8);
        impl AdaptiveAdversary for Reverser {
            fn name(&self) -> &'static str {
                "reverser"
            }
            fn next_move(&mut self, _v: &GameView) -> Move {
                self.0 += 1;
                match self.0 {
                    1 => Move::Advance { to: rat(5, 1) },
                    _ => Move::Advance { to: rat(1, 1) }, // backwards!
                }
            }
        }
        let result = std::panic::catch_unwind(|| {
            let mut adv = Reverser(0);
            let mut ff = FirstFit::new();
            let _ = play(&mut adv, &mut ff, 100);
        });
        assert!(result.is_err(), "time reversal must panic");
    }

    #[test]
    fn runaway_adversaries_are_bounded() {
        struct Staller;
        impl AdaptiveAdversary for Staller {
            fn name(&self) -> &'static str {
                "staller"
            }
            fn next_move(&mut self, v: &GameView) -> Move {
                Move::Advance {
                    to: v.now + Rational::ONE,
                }
            }
        }
        let result = std::panic::catch_unwind(|| {
            let mut adv = Staller;
            let mut ff = FirstFit::new();
            let _ = play(&mut adv, &mut ff, 50);
        });
        assert!(result.is_err(), "move budget must be enforced");
    }
}
