//! JSON trace IO for instances.
//!
//! Traces are plain JSON so they can be generated, inspected and
//! diffed outside the toolchain; rationals are stored as `{num, den}`
//! pairs (re-normalized on load by `dbp-numeric`'s serde shadow).

use dbp_core::{Instance, InstanceError};
use dbp_numeric::Rational;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One item in a trace file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceItem {
    /// Resource demand in `(0, 1]` of a unit server.
    pub size: Rational,
    /// Arrival time.
    pub arrival: Rational,
    /// Departure time.
    pub departure: Rational,
}

/// A serializable workload trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Short identifier.
    pub name: String,
    /// Free-form description (generator, parameters, date …).
    pub description: String,
    /// String metadata (seed, family parameters …).
    #[serde(default)]
    pub metadata: BTreeMap<String, String>,
    /// The items.
    pub items: Vec<TraceItem>,
}

/// Errors from trace IO.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Structurally valid JSON describing an invalid instance.
    Invalid(InstanceError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace IO error: {e}"),
            TraceError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> TraceError {
        TraceError::Json(e)
    }
}

impl Trace {
    /// Captures an instance as a trace.
    pub fn from_instance(name: &str, description: &str, instance: &Instance) -> Trace {
        Trace {
            name: name.to_string(),
            description: description.to_string(),
            metadata: BTreeMap::new(),
            items: instance
                .items()
                .iter()
                .map(|r| TraceItem {
                    size: r.size,
                    arrival: r.arrival(),
                    departure: r.departure(),
                })
                .collect(),
        }
    }

    /// Rebuilds (and re-validates) the instance.
    pub fn to_instance(&self) -> Result<Instance, InstanceError> {
        Instance::new(
            self.items
                .iter()
                .map(|t| (t.size, t.arrival, t.departure))
                .collect(),
        )
    }

    /// Adds a metadata entry (builder style).
    pub fn with_meta(mut self, key: &str, value: impl ToString) -> Trace {
        self.metadata.insert(key.to_string(), value.to_string());
        self
    }
}

/// Writes a trace as pretty JSON.
pub fn save_instance(path: &Path, trace: &Trace) -> Result<(), TraceError> {
    let json = serde_json::to_string_pretty(trace)?;
    fs::write(path, json)?;
    Ok(())
}

/// Reads a trace and validates its instance.
pub fn load_instance(path: &Path) -> Result<(Trace, Instance), TraceError> {
    let json = fs::read_to_string(path)?;
    let trace: Trace = serde_json::from_str(&json)?;
    let instance = trace.to_instance().map_err(TraceError::Invalid)?;
    Ok((trace, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomWorkload;
    use dbp_numeric::rat;

    #[test]
    fn round_trip_through_json() {
        let inst = RandomWorkload::with_mu(30, rat(4, 1), 5).generate();
        let trace = Trace::from_instance("rt", "round trip", &inst)
            .with_meta("seed", 5)
            .with_meta("mu", "4");
        let dir = std::env::temp_dir().join("dbp-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.json");
        save_instance(&path, &trace).unwrap();
        let (loaded, rebuilt) = load_instance(&path).unwrap();
        assert_eq!(loaded, trace);
        assert_eq!(rebuilt, inst);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_trace_is_rejected_on_load() {
        let trace = Trace {
            name: "bad".into(),
            description: String::new(),
            metadata: BTreeMap::new(),
            items: vec![TraceItem {
                size: rat(2, 1), // > 1: invalid
                arrival: rat(0, 1),
                departure: rat(1, 1),
            }],
        };
        assert!(matches!(
            trace.to_instance(),
            Err(InstanceError::BadSize { .. })
        ));
    }

    #[test]
    fn malformed_json_is_an_error() {
        let dir = std::env::temp_dir().join("dbp-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(load_instance(&path), Err(TraceError::Json(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
