//! The paper's lower-bound constructions, executable.
//!
//! Every generator returns `(Instance, GadgetPrediction)` where the
//! prediction carries the closed-form costs the construction is
//! engineered to achieve, so experiment tables can show *predicted vs
//! measured* side by side.

use dbp_core::Instance;
use dbp_numeric::{rat, Rational};

/// Closed-form expectations for a gadget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GadgetPrediction {
    /// Human-readable identification of the construction.
    pub family: &'static str,
    /// The duration ratio `µ` of the instance.
    pub mu: Rational,
    /// Predicted cost of the targeted algorithm.
    pub algorithm_cost: Rational,
    /// Predicted cost of the offline adversary (`OPT_total`).
    pub opt_cost: Rational,
    /// The ratio the family approaches as its size parameter grows.
    pub limit_ratio: Rational,
}

impl GadgetPrediction {
    /// Predicted achieved ratio for this concrete instance size.
    pub fn predicted_ratio(&self) -> Rational {
        self.algorithm_cost / self.opt_cost
    }
}

/// §VIII: the Next Fit pair gadget.
///
/// `n ≥ 3` pairs arrive in sequence at time 0; each pair is a
/// size-`1/2` item (duration 1) followed by a size-`1/n` item
/// (duration `µ`). Next Fit opens a bin per pair — the next pair's
/// half does not fit on top of `1/2 + 1/n` — and each bin stays open
/// for `µ`, so `NF_total = n·µ`.
///
/// The adversary packs the halves two-per-bin and all `1/n` items
/// into a single bin: `OPT(t) = n/2 + 1` on `[0, 1)` and `1` on
/// `[1, µ)`, giving `OPT_total = n/2 + µ`.
///
/// **Reproduction note (DESIGN.md §3).** The paper's own accounting
/// states `OPT_total = n + µ` and the limit ratio `µ`; with halves
/// pairable two-per-bin the exact adversary achieves `n/2 + µ`, so
/// the measured ratio approaches `2µ` — *stronger* than the claimed
/// `µ` lower bound and still consistent with Next Fit's `2µ + 1`
/// upper bound [Kamali–López-Ortiz]. The prediction below uses the
/// exact adversary; `exp_nextfit_lb` prints the paper's formula too.
pub fn next_fit_pairs(n: u32, mu: u32) -> (Instance, GadgetPrediction) {
    assert!(n >= 3, "the §VIII gadget needs n ≥ 3");
    assert!(mu >= 1, "µ ≥ 1");
    let mut specs = Vec::with_capacity(2 * n as usize);
    for _ in 0..n {
        specs.push((Rational::HALF, Rational::ZERO, Rational::ONE));
        specs.push((rat(1, n as i128), Rational::ZERO, rat(mu as i128, 1)));
    }
    let instance = Instance::new(specs).expect("gadget specs are valid");
    let n_r = rat(n as i128, 1);
    let mu_r = rat(mu as i128, 1);
    // OPT profile: on [0,1) the active volume is n/2 + 1 (halves plus
    // the full unit of 1/n items), so OPT(t) = ⌈n/2 + 1⌉ = ⌈n/2⌉ + 1,
    // achievable by pairing halves and slotting tinies into the spare
    // capacity. On [1, µ) only the tinies remain: one bin.
    let opt = rat((n as i128).div_euclid(2) + (n as i128 % 2), 1) + mu_r;
    let prediction = GadgetPrediction {
        family: "next-fit-pairs (§VIII)",
        mu: mu_r,
        algorithm_cost: n_r * mu_r,
        opt_cost: opt,
        limit_ratio: Rational::TWO * mu_r,
    };
    (instance, prediction)
}

/// The paper's §VIII formula `nµ/(n+µ)` (as printed), for
/// side-by-side reporting.
pub fn next_fit_paper_formula(n: u32, mu: u32) -> Rational {
    let n = rat(n as i128, 1);
    let mu = rat(mu as i128, 1);
    n * mu / (n + mu)
}

/// The universal pair family driving *every* non-classifying
/// algorithm to ratio → `µ`.
///
/// `k` pairs arrive in sequence at time 0: a large item of size
/// `1 − 1/m` (duration 1) followed by a tiny item of size `1/m`
/// (duration `µ`), with `m ≥ k`. Each pair exactly fills a bin, so
/// *any* algorithm that does not reserve bins by size class ends up
/// with `k` bins, each kept open for `µ` by its tiny resident:
/// `ALG_total = k·µ`. The adversary uses `k` bins on `[0, 1)` and
/// repacks the tinies (total size `k/m ≤ 1`) into one bin afterwards:
/// `OPT_total = k + µ − 1`. Ratio `kµ/(k+µ−1) → µ`.
///
/// Hybrid First Fit *defeats* this family (tinies share one
/// small-class bin), which is exactly the separation `exp_hybrid_ff`
/// demonstrates.
pub fn universal_mu_pairs(k: u32, mu: u32, m: u32) -> (Instance, GadgetPrediction) {
    assert!(k >= 1 && m >= k, "need m ≥ k ≥ 1");
    assert!(mu >= 1, "µ ≥ 1");
    let mut specs = Vec::with_capacity(2 * k as usize);
    for _ in 0..k {
        specs.push((
            Rational::ONE - rat(1, m as i128),
            Rational::ZERO,
            Rational::ONE,
        ));
        specs.push((rat(1, m as i128), Rational::ZERO, rat(mu as i128, 1)));
    }
    let instance = Instance::new(specs).expect("gadget specs are valid");
    let k_r = rat(k as i128, 1);
    let mu_r = rat(mu as i128, 1);
    let prediction = GadgetPrediction {
        family: "universal-mu-pairs",
        mu: mu_r,
        algorithm_cost: k_r * mu_r,
        opt_cost: k_r + mu_r - Rational::ONE,
        limit_ratio: mu_r,
    };
    (instance, prediction)
}

/// The Any-Fit gap-ladder achieving ratio → `µ + 1`.
///
/// At time 0, `n` large items `B_i` of size `1 − g_i` arrive
/// (`g_i = (n+1−i)·δ`, `δ = 1/(n(n+1))`), each forced into its own
/// bin. At time `1 − δ`, tiny items `s_i` of size exactly `g_i`
/// arrive in descending size order: `s_i` fits **only** bin `i`
/// (fuller bins are exactly full, sparser bins have smaller gaps), so
/// any Any-Fit algorithm tops every bin up to level 1. The larges
/// depart at time 1; the tinies (duration `µ`) hold all `n` bins open
/// until `1 − δ + µ`:
///
/// * `ALG_total = n·(µ + 1 − δ)`;
/// * `OPT_total = n + µ − δ` (`n` bins until the larges leave, then
///   one bin for the tinies, whose total size is `Σ g_i ≤ 1/2`);
/// * ratio → `µ + 1` as `n → ∞`.
pub fn any_fit_ladder(n: u32, mu: u32) -> (Instance, GadgetPrediction) {
    assert!(n >= 2, "ladder needs n ≥ 2");
    assert!(mu >= 1, "µ ≥ 1");
    let n_i = n as i128;
    let delta = rat(1, n_i * (n_i + 1));
    let mut specs = Vec::with_capacity(2 * n as usize);
    // Larges at t = 0, duration 1.
    for i in 1..=n_i {
        let g_i = rat(n_i + 1 - i, n_i * (n_i + 1));
        specs.push((Rational::ONE - g_i, Rational::ZERO, Rational::ONE));
    }
    // Tinies at t = 1 − δ, duration µ, descending sizes g_1 > g_2 > …
    let t1 = Rational::ONE - delta;
    for i in 1..=n_i {
        let g_i = rat(n_i + 1 - i, n_i * (n_i + 1));
        specs.push((g_i, t1, t1 + rat(mu as i128, 1)));
    }
    let instance = Instance::new(specs).expect("gadget specs are valid");
    let n_r = rat(n_i, 1);
    let mu_r = rat(mu as i128, 1);
    let prediction = GadgetPrediction {
        family: "any-fit-ladder",
        mu: mu_r,
        algorithm_cost: n_r * (mu_r + Rational::ONE - delta),
        opt_cost: n_r + mu_r - delta,
        limit_ratio: mu_r + Rational::ONE,
    };
    (instance, prediction)
}

/// The Best Fit scatter gadget: `k` rounds, one per time unit.
/// Round `j` (at `t = j − 1`) releases a *gap-setter* `G_j` of size
/// `1 − (k+1−j)·δ` (duration 1) followed by a *probe* `P_j` of size
/// exactly `G_j`'s gap, `(k+1−j)·δ` (duration `µ`), with
/// `δ = 1/(k(k+1))`. Gap-setter sizes **increase** round over round,
/// so `G_j` fits no earlier bin (a bin still holding its setter is
/// exactly full; a bin holding only its probe has level `(k+1−i)δ`
/// and `(k+1−i)δ + G_j > 1`): every setter opens a fresh bin under
/// any algorithm.
///
/// Best Fit sends each probe to the fullest feasible bin — the bin
/// its own gap-setter just opened (level ≈ 1) rather than the sparse
/// early bins. Each of the `k` bins is then held open for `µ` by its
/// probe: `BF_total = k·µ`.
///
/// First Fit instead returns each probe to the *earliest* open bin
/// (bin 1, whose setter departs after round 1), consolidating all
/// probes there: `FF_total = 2k + µ − 2 = OPT_total` — First Fit is
/// exactly optimal on this family. The separation `BF/OPT → µ/2`
/// grows with `µ`, reproducing the paper's qualitative claim that
/// Best Fit, unlike First Fit, carries a multiplicative penalty First
/// Fit's `µ+4` guarantee rules out.
///
/// **Reproduction note.** The paper's stronger statement — Best Fit
/// unbounded *for fixed µ* — cites the construction of [Li–Tang–Cai
/// SPAA'14/TPDS'16], which the OCR text does not reproduce; this
/// family is our documented substitute (DESIGN.md §2).
pub fn best_fit_scatter(k: u32, mu: u32) -> (Instance, GadgetPrediction) {
    assert!(k >= 2, "scatter needs k ≥ 2");
    assert!(mu >= 2, "probes must outlive gap-setters: µ ≥ 2");
    let k_i = k as i128;
    let delta_den = k_i * (k_i + 1);
    let mut specs = Vec::with_capacity(2 * k as usize);
    for j in 1..=k_i {
        let t = rat(j - 1, 1);
        let gap = rat(k_i + 1 - j, delta_den);
        specs.push((Rational::ONE - gap, t, t + Rational::ONE)); // G_j
        specs.push((gap, t, t + rat(mu as i128, 1))); // P_j
    }
    let instance = Instance::new(specs).expect("gadget specs are valid");
    let k_r = rat(k_i, 1);
    let mu_r = rat(mu as i128, 1);
    let prediction = GadgetPrediction {
        family: "best-fit-scatter",
        mu: mu_r,
        // BF: k bins, bin j open from j−1 until j−1+µ.
        algorithm_cost: k_r * mu_r,
        // OPT(t): 1 on [0,1) (G_1+P_1 fill one bin), 2 on [1, k)
        // (current setter + accumulated probes), 1 on [k, k−1+µ):
        // total 1 + 2(k−1) + (µ−1) = 2k + µ − 2.
        opt_cost: Rational::TWO * k_r + mu_r - Rational::TWO,
        limit_ratio: mu_r * Rational::HALF,
    };
    (instance, prediction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_analysis::measure_ratio;
    use dbp_core::prelude::*;
    use dbp_core::PackingAlgorithm;

    #[test]
    fn next_fit_gadget_behaves_as_predicted() {
        for (n, mu) in [(4u32, 3u32), (6, 2), (5, 4)] {
            let (inst, pred) = next_fit_pairs(n, mu);
            assert_eq!(inst.mu(), Some(pred.mu));
            let out = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
            assert_eq!(out.total_usage(), pred.algorithm_cost, "n={n} µ={mu}");
            assert_eq!(out.bins_opened(), n as usize);
            let rep = measure_ratio(&inst, &out);
            assert_eq!(rep.opt_lower, pred.opt_cost, "OPT mismatch n={n} µ={mu}");
            assert_eq!(rep.exact_ratio(), Some(pred.predicted_ratio()));
        }
    }

    #[test]
    fn next_fit_gadget_ratio_approaches_two_mu() {
        let mu = 4u32;
        let mut last = Rational::ZERO;
        for n in [4u32, 8, 16, 64] {
            let (_, pred) = next_fit_pairs(n, mu);
            let r = pred.predicted_ratio();
            assert!(r > last, "ratio should increase with n");
            last = r;
        }
        // Approaching 2µ = 8.
        assert!(last > rat(13, 2), "ratio {last} should be close to 8");
        assert!(last < rat(8, 1));
        // The paper's printed formula stays below µ+1.
        assert!(next_fit_paper_formula(32, mu) < rat(4, 1));
    }

    #[test]
    fn universal_pairs_hurt_every_plain_algorithm() {
        let (inst, pred) = universal_mu_pairs(8, 4, 8);
        for mut algo in [
            Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            Box::new(BestFit::new()),
            Box::new(WorstFit::new()),
            Box::new(NextFit::new()),
        ] {
            let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
            assert_eq!(
                out.total_usage(),
                pred.algorithm_cost,
                "{} should pay kµ",
                out.algorithm()
            );
        }
        // Hybrid First Fit defeats the gadget.
        let hff = Runner::new(&inst)
            .run(&mut HybridFirstFit::classic())
            .unwrap();
        assert!(hff.total_usage() < pred.algorithm_cost);
        // k larges (one bin each, duration 1) + 1 tiny bin (duration µ).
        assert_eq!(hff.total_usage(), rat(8, 1) + rat(4, 1));
        // Exact adversary matches the prediction.
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let rep = measure_ratio(&inst, &out);
        assert_eq!(rep.opt_lower, pred.opt_cost);
    }

    #[test]
    fn ladder_forces_any_fit_to_mu_plus_1() {
        let (inst, pred) = any_fit_ladder(6, 3);
        for mut algo in [
            Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            Box::new(BestFit::new()),
            Box::new(WorstFit::new()),
            Box::new(LastFit::new()),
            Box::new(RandomFit::seeded(5)),
        ] {
            let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
            assert_eq!(out.bins_opened(), 6, "{}", out.algorithm());
            assert_eq!(
                out.total_usage(),
                pred.algorithm_cost,
                "{}",
                out.algorithm()
            );
        }
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let rep = measure_ratio(&inst, &out);
        assert_eq!(rep.opt_lower, pred.opt_cost, "adversary cost");
        // Measured ratio matches the closed form exactly and sits
        // below the µ+1 limit.
        let r = rep.exact_ratio().unwrap();
        assert_eq!(r, pred.predicted_ratio());
        assert!(r > rat(5, 2) && r < rat(4, 1), "ratio {r}");
    }

    #[test]
    fn ladder_ratio_grows_towards_mu_plus_1() {
        let mu = 2u32;
        let r_small = {
            let (_, p) = any_fit_ladder(3, mu);
            p.predicted_ratio()
        };
        let r_big = {
            let (_, p) = any_fit_ladder(48, mu);
            p.predicted_ratio()
        };
        assert!(r_big > r_small);
        assert!(r_big > rat(14, 5), "r_big = {r_big} should approach 3");
        assert!(r_big < rat(3, 1));
    }

    #[test]
    fn scatter_separates_best_fit_from_first_fit() {
        let (inst, pred) = best_fit_scatter(8, 6);
        let bf = Runner::new(&inst).run(&mut BestFit::new()).unwrap();
        let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        // BF scatters probes into fresh bins: k bins × µ.
        assert_eq!(bf.total_usage(), pred.algorithm_cost);
        assert_eq!(bf.bins_opened(), 8);
        // FF consolidates probes into early bins — strictly cheaper.
        assert!(
            ff.total_usage() < bf.total_usage(),
            "FF {} !< BF {}",
            ff.total_usage(),
            bf.total_usage()
        );
    }

    #[test]
    fn gadget_instances_are_valid_and_mu_correct() {
        for (inst, pred) in [
            next_fit_pairs(5, 7),
            universal_mu_pairs(4, 9, 6),
            any_fit_ladder(5, 2),
            best_fit_scatter(4, 3),
        ] {
            assert_eq!(inst.mu(), Some(pred.mu), "{}", pred.family);
            assert!(pred.predicted_ratio() > Rational::ONE, "{}", pred.family);
        }
    }
}
