//! Synthetic cloud-gaming session workload (§I's motivating
//! application).
//!
//! The paper motivates MinUsageTime DBP with cloud gaming: play
//! requests arrive at arbitrary times, each needs a share of a
//! server's GPU, runs until the player quits (unknown in advance),
//! cannot migrate, and servers are rented by the hour. No public
//! GaiKai-style trace exists, so this generator is the documented
//! substitute (DESIGN.md §2): it exercises exactly the code path a
//! real trace would — a stream of (gpu_share, arrival, departure)
//! triples with diurnally modulated arrivals and heavy-tailed play
//! durations.

use dbp_core::Instance;
use dbp_numeric::{rat, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A game title class: GPU demand and popularity weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TitleClass {
    /// Display name.
    pub name: &'static str,
    /// Fraction of one server's GPU a session occupies.
    pub gpu_share: Rational,
    /// Relative popularity (sampling weight).
    pub popularity: u32,
}

/// Configuration for the session generator.
#[derive(Debug, Clone)]
pub struct GamingConfig {
    /// RNG seed.
    pub seed: u64,
    /// Length of the generated window, in hours.
    pub horizon_hours: u32,
    /// Mean sessions per hour at the diurnal peak.
    pub peak_sessions_per_hour: u32,
    /// Title catalogue (defaults: light / medium / heavy GPU tiers).
    pub titles: Vec<TitleClass>,
    /// Mean play duration in minutes (heavy-tailed around this).
    pub mean_play_minutes: u32,
    /// Shortest session allowed, minutes (defines `d_min`).
    pub min_play_minutes: u32,
    /// Longest session allowed, minutes (defines `d_max`, hence `µ`).
    pub max_play_minutes: u32,
}

impl Default for GamingConfig {
    fn default() -> GamingConfig {
        GamingConfig {
            seed: 0x6A6D,
            horizon_hours: 24,
            peak_sessions_per_hour: 60,
            titles: vec![
                TitleClass {
                    name: "casual-2d",
                    gpu_share: rat(1, 8),
                    popularity: 5,
                },
                TitleClass {
                    name: "midrange-3d",
                    gpu_share: rat(1, 4),
                    popularity: 3,
                },
                TitleClass {
                    name: "aaa-openworld",
                    gpu_share: rat(1, 2),
                    popularity: 2,
                },
            ],
            mean_play_minutes: 45,
            min_play_minutes: 5,
            max_play_minutes: 240,
        }
    }
}

/// Hourly demand multipliers (percent of peak), a stylized diurnal
/// curve: quiet early morning, evening prime time.
const DIURNAL_PERCENT: [u32; 24] = [
    35, 25, 18, 12, 10, 10, 14, 20, 28, 35, 42, 50, // 00:00–11:00
    55, 58, 60, 64, 70, 80, 90, 100, 98, 88, 70, 50, // 12:00–23:00
];

/// A generated workload: the packing instance plus per-item title
/// indices (for per-title reporting).
#[derive(Debug, Clone)]
pub struct GamingTrace {
    /// The DBP instance (times in minutes).
    pub instance: Instance,
    /// `titles[i]` is the index into the config's catalogue for
    /// item `i`.
    pub titles: Vec<usize>,
}

impl GamingConfig {
    /// Generates the session trace. Times are in minutes on a
    /// 1-minute grid; sizes are the titles' GPU shares.
    pub fn generate(&self) -> GamingTrace {
        assert!(!self.titles.is_empty(), "need at least one title");
        assert!(
            0 < self.min_play_minutes && self.min_play_minutes <= self.max_play_minutes,
            "bad play-duration range"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut specs = Vec::new();
        let mut titles = Vec::new();
        let weight_total: u32 = self.titles.iter().map(|t| t.popularity).sum();
        for hour in 0..self.horizon_hours {
            let mult = DIURNAL_PERCENT[(hour % 24) as usize];
            let expected = self.peak_sessions_per_hour * mult / 100;
            // Poisson-ish: Binomial(2·expected, 1/2) keeps the mean with
            // integer arithmetic and realistic dispersion.
            let sessions: u32 = (0..2 * expected).map(|_| rng.gen_range(0..2u32)).sum();
            for _ in 0..sessions {
                let minute = rng.gen_range(0..60u32);
                let arrival = rat((hour * 60 + minute) as i128, 1);
                let duration = rat(self.sample_duration(&mut rng) as i128, 1);
                let title = self.sample_title(&mut rng, weight_total);
                specs.push((self.titles[title].gpu_share, arrival, arrival + duration));
                titles.push(title);
            }
        }
        GamingTrace {
            instance: Instance::new(specs).expect("generator produces valid sessions"),
            titles,
        }
    }

    /// Heavy-tailed play time: a geometric mixture clipped to
    /// `[min, max]` minutes; the tail mass makes `µ` realistic (a few
    /// marathon sessions among many short ones).
    fn sample_duration(&self, rng: &mut StdRng) -> u32 {
        let mean = self.mean_play_minutes.max(1);
        // Exponential-ish via geometric with p = 1/mean.
        let mut d = self.min_play_minutes;
        while d < self.max_play_minutes && rng.gen_range(0..mean) != 0 {
            d += 1;
        }
        d
    }

    fn sample_title(&self, rng: &mut StdRng, weight_total: u32) -> usize {
        let mut pick = rng.gen_range(0..weight_total);
        for (i, t) in self.titles.iter().enumerate() {
            if pick < t.popularity {
                return i;
            }
            pick -= t.popularity;
        }
        unreachable!("weights exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates_plausible_day() {
        let trace = GamingConfig::default().generate();
        let n = trace.instance.len();
        // Peak 60/hour over 24 diurnal hours ≈ sum of multipliers.
        assert!(n > 300, "suspiciously few sessions: {n}");
        assert!(n < 2000, "suspiciously many sessions: {n}");
        assert_eq!(trace.titles.len(), n);
        // All sizes come from the catalogue.
        for (item, &t) in trace.instance.items().iter().zip(&trace.titles) {
            assert_eq!(item.size, GamingConfig::default().titles[t].gpu_share);
        }
    }

    #[test]
    fn durations_respect_bounds_and_mu() {
        let cfg = GamingConfig {
            min_play_minutes: 10,
            max_play_minutes: 100,
            ..Default::default()
        };
        let trace = cfg.generate();
        for item in trace.instance.items() {
            let d = item.duration();
            assert!(d >= rat(10, 1) && d <= rat(100, 1));
        }
        assert!(trace.instance.mu().unwrap() <= rat(10, 1));
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = GamingConfig::default().generate();
        let b = GamingConfig::default().generate();
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.titles, b.titles);
        let c = GamingConfig {
            seed: 99,
            ..Default::default()
        }
        .generate();
        assert_ne!(a.instance, c.instance);
    }

    #[test]
    fn diurnal_curve_shapes_arrivals() {
        let trace = GamingConfig {
            horizon_hours: 24,
            ..Default::default()
        }
        .generate();
        let count_in = |lo: i128, hi: i128| {
            trace
                .instance
                .items()
                .iter()
                .filter(|r| r.arrival() >= rat(lo * 60, 1) && r.arrival() < rat(hi * 60, 1))
                .count()
        };
        let night = count_in(2, 6); // 02:00–06:00, multipliers ≤ 18
        let prime = count_in(18, 22); // 18:00–22:00, multipliers ≥ 88
        assert!(
            prime > night * 3,
            "prime time ({prime}) should dwarf night ({night})"
        );
    }
}
