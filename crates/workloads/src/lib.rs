#![warn(missing_docs)]

//! # `dbp-workloads` — instance generators and trace IO
//!
//! Three families of inputs for the MinUsageTime DBP experiments:
//!
//! * [`adaptive`] — the lower-bound *game*: adversaries that choose
//!   departures after observing placements, run live against the
//!   packing engine.
//! * [`adversarial`] — the paper's lower-bound constructions in
//!   executable form: the §VIII Next Fit pair gadget, the universal
//!   `µ` pair family, the Any-Fit `µ+1` gap-ladder, and the Best Fit
//!   scatter gadget. Each returns the instance together with the
//!   closed-form cost predictions the construction is designed to
//!   achieve, so experiments can print *predicted vs measured*.
//! * [`random`] — seeded random workloads with controllable arrival
//!   process, duration spread (hence `µ`) and size distribution, all
//!   in exact rationals.
//! * [`search`] — adversarial instance *search*: simulated annealing
//!   over concrete instances with the certified measured `FF / OPT`
//!   ratio as objective, warm-started from the §VIII gadgets.
//! * [`gaming`] — a synthetic cloud-gaming session workload (the
//!   paper's motivating application): Poisson-ish session arrivals
//!   with diurnal modulation, heavy-tailed play durations, per-title
//!   GPU demand classes.
//! * [`traces`] — JSON (de)serialization of instances with metadata.

pub mod adaptive;
pub mod adversarial;
pub mod gaming;
pub mod random;
pub mod search;
pub mod traces;

pub use adaptive::{play, AdaptiveAdversary, GameResult, GameView, KeepSmallestAdversary, Move};
pub use adversarial::{
    any_fit_ladder, best_fit_scatter, next_fit_pairs, universal_mu_pairs, GadgetPrediction,
};
pub use gaming::{GamingConfig, TitleClass};
pub use random::RandomWorkload;
pub use search::{anneal_first_fit, random_max_ratio, SearchConfig, SearchReport};
pub use traces::{load_instance, save_instance, Trace};
