//! Sweep µ and measure First Fit's achieved competitive ratio on
//! random workloads, in parallel — a quick at-home version of
//! experiment E1.
//!
//! ```text
//! cargo run --release --example ratio_sweep
//! ```

use mindbp::analysis::measure_ratio;
use mindbp::numeric::{rat, Rational};
use mindbp::prelude::*;

fn main() {
    let mus = [1u32, 2, 3, 4, 6, 8, 12, 16];
    let seeds: Vec<u64> = (0..32).collect();

    println!(
        "{:>4} {:>12} {:>12} {:>8}",
        "µ", "max FF/OPT", "mean FF/OPT", "µ+4"
    );
    for mu in mus {
        let ratios = mindbp::par::par_map(&seeds, |&seed| {
            let inst = RandomWorkload::with_sharp_mu(48, rat(mu as i128, 1), seed).generate();
            let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
            measure_ratio(&inst, &out).exact_ratio()
        });
        let measured: Vec<Rational> = ratios.into_iter().flatten().collect();
        let max = measured.iter().copied().max().unwrap_or(Rational::ZERO);
        let mean = measured.iter().map(|r| r.to_f64()).sum::<f64>() / measured.len().max(1) as f64;
        println!(
            "{:>4} {:>12.3} {:>12.3} {:>8}",
            mu,
            max.to_f64(),
            mean,
            mu + 4
        );
        assert!(
            max <= rat(mu as i128 + 4, 1),
            "Theorem 1 violated — impossible"
        );
    }
    println!("\nevery measured ratio sits far below the worst-case µ+4 bound, as expected;");
    println!("the adversarial families (see `adversarial_gallery`) are what push FF towards µ.");
}
