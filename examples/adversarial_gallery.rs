//! The lower-bound gallery: every adversarial family from the paper
//! (and its companion results), with predicted vs measured costs.
//!
//! ```text
//! cargo run --release --example adversarial_gallery
//! ```

use mindbp::analysis::measure_ratio;
use mindbp::prelude::*;
use mindbp::workloads::adversarial::{
    any_fit_ladder, best_fit_scatter, next_fit_pairs, universal_mu_pairs,
};

fn main() {
    println!("§VIII — Next Fit pair gadget (n = 16, µ = 4)");
    let (inst, pred) = next_fit_pairs(16, 4);
    let nf = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
    let rep = measure_ratio(&inst, &nf);
    println!(
        "  predicted NF cost {} / OPT {}",
        pred.algorithm_cost, pred.opt_cost
    );
    println!(
        "  measured  NF cost {} / OPT {} → ratio {} (limit 2µ = {})",
        nf.total_usage(),
        rep.opt_lower,
        rep.exact_ratio().unwrap(),
        pred.limit_ratio
    );

    println!("\nuniversal µ pair family (k = 12, µ = 6): all plain algorithms pay kµ");
    let (inst, pred) = universal_mu_pairs(12, 6, 12);
    for mut algo in [
        Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
        Box::new(BestFit::new()),
        Box::new(NextFit::new()),
        Box::new(HybridFirstFit::classic()),
    ] {
        let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
        let rep = measure_ratio(&inst, &out);
        println!(
            "  {:<20} cost {:>4} ratio {}",
            out.algorithm(),
            out.total_usage().to_string(),
            rep.exact_ratio().map(|r| r.to_string()).unwrap_or_default()
        );
    }
    println!(
        "  (predicted plain-algorithm cost {}, OPT {})",
        pred.algorithm_cost, pred.opt_cost
    );

    println!("\nAny-Fit gap-ladder (n = 10, µ = 3): forced ratio → µ+1");
    let (inst, pred) = any_fit_ladder(10, 3);
    let out = Runner::new(&inst).run(&mut WorstFit::new()).unwrap();
    let rep = measure_ratio(&inst, &out);
    println!(
        "  WorstFit cost {} vs OPT {} → ratio {} (predicted {}, limit µ+1 = {})",
        out.total_usage(),
        rep.opt_lower,
        rep.exact_ratio().unwrap(),
        pred.predicted_ratio(),
        pred.limit_ratio
    );

    println!("\nBest Fit scatter gadget (k = 10, µ = 8): BF scatters, FF is optimal");
    let (inst, pred) = best_fit_scatter(10, 8);
    let bf = Runner::new(&inst).run(&mut BestFit::new()).unwrap();
    let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
    let rep_bf = measure_ratio(&inst, &bf);
    let rep_ff = measure_ratio(&inst, &ff);
    println!(
        "  BF cost {} (ratio {}), FF cost {} (ratio {}), OPT {} — BF limit µ/2 = {}",
        bf.total_usage(),
        rep_bf.exact_ratio().unwrap(),
        ff.total_usage(),
        rep_ff.exact_ratio().unwrap(),
        rep_bf.opt_lower,
        pred.limit_ratio
    );

    println!("\nthe §VIII gadget, as a picture (Next Fit fleet vs OPT over time):");
    let (inst, _) = next_fit_pairs(8, 4);
    let nf = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
    println!("{}", mindbp::viz::comparison(&inst, &nf, 64));
}
