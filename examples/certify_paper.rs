//! Certify the paper on a random instance: run First Fit, execute
//! the §IV–§VII decomposition, check every proposition/lemma and
//! Theorem 1, and render the machinery.
//!
//! ```text
//! cargo run --release --example certify_paper [seed]
//! ```

use mindbp::analysis::{certify_first_fit, Decomposition, TheoremChain};
use mindbp::numeric::rat;
use mindbp::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);

    let inst = RandomWorkload::with_sharp_mu(24, rat(4, 1), seed).generate();
    println!(
        "random instance: {} items, µ = {}, vol = {}, span = {}\n",
        inst.len(),
        inst.mu().unwrap(),
        inst.vol(),
        inst.span()
    );

    let outcome = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
    println!("{}", mindbp::viz::usage(&inst, &outcome, 72));
    println!("{}", mindbp::viz::subperiods(&inst, &outcome, 72));

    let decomp = Decomposition::compute(&inst, &outcome);
    println!(
        "decomposition: {} bins, Σ|V| = {}, Σ|W| = {} (= span), {} l-groups ({} consolidated)\n",
        decomp.bins.len(),
        decomp.total_v(),
        decomp.total_w(),
        decomp.groups.len(),
        decomp.groups.iter().filter(|g| g.is_consolidated()).count(),
    );

    println!("{}", TheoremChain::compute(&inst));
    println!();

    let report = certify_first_fit(&inst);
    println!("{report}");
    if report.all_passed() {
        println!("all certificates hold — Theorem 1 verified on this instance.");
    } else {
        println!("!! certificate failures (this would falsify the reconstruction)");
        std::process::exit(1);
    }
}
