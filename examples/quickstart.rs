//! Quickstart: pack a handful of cloud jobs with First Fit and
//! compare against the offline adversary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mindbp::numeric::rat;
use mindbp::prelude::*;

fn main() {
    // A small job stream: sizes are fractions of one server's
    // capacity, times are hours. Departures are *not* visible to the
    // algorithm until they happen — that's the online model.
    let jobs = Instance::builder()
        .item(rat(1, 2), rat(0, 1), rat(3, 1)) // half-server job, 3h
        .item(rat(1, 4), rat(0, 1), rat(1, 1)) // quarter job, 1h
        .item(rat(2, 3), rat(1, 1), rat(4, 1)) // big job arrives at 1h
        .item(rat(1, 4), rat(2, 1), rat(5, 1))
        .item(rat(1, 2), rat(3, 1), rat(6, 1))
        .build()
        .expect("valid instance");

    println!("instance: {:#?}\n", jobs.stats());
    println!("{}", mindbp::viz::timeline(&jobs, 64));

    for mut algo in [
        Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
        Box::new(BestFit::new()),
        Box::new(NextFit::new()),
    ] {
        let outcome = Runner::new(&jobs)
            .run(algo.as_mut())
            .expect("packing succeeds");
        let report = measure_ratio(&jobs, &outcome);
        println!(
            "{:<10} bins={} usage={} ratio={}",
            outcome.algorithm(),
            outcome.bins_opened(),
            outcome.total_usage(),
            report
                .exact_ratio()
                .map(|r| format!("{} (≤ µ+4 = {})", r, report.theorem1_bound().unwrap()))
                .unwrap_or_else(|| "n/a".into()),
        );
    }

    // The packing itself, bin by bin.
    let outcome = Runner::new(&jobs).run(&mut FirstFit::new()).unwrap();
    println!("\nFirst Fit packing:");
    for bin in outcome.bins() {
        println!(
            "  {} open {} items {:?} peak level {}",
            bin.id, bin.usage, bin.items, bin.peak_level
        );
    }
}
