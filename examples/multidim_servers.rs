//! Multi-resource servers (the paper's §IX future work): dispatch
//! CPU+memory jobs with vector First Fit and compare against the
//! vector repacking adversary.
//!
//! ```text
//! cargo run --release --example multidim_servers
//! ```

use mindbp::multidim::{
    md_opt_total, run_md_packing, Correlation, MdBestFitBySum, MdFirstFit, MdNextFit,
    MdRandomWorkload,
};
use mindbp::numeric::rat;

fn main() {
    println!("CPU+memory MinUsageTime DBP — §IX future work made concrete\n");
    for (label, correlation) in [
        (
            "complementary (cpu-heavy vs mem-heavy jobs)",
            Correlation::Complementary,
        ),
        ("independent", Correlation::Independent),
        (
            "identical (reduces to scalar behavior)",
            Correlation::Identical,
        ),
    ] {
        let mut wl = MdRandomWorkload::cpu_mem(60, rat(4, 1), 2016);
        wl.correlation = correlation;
        let inst = wl.generate();
        let opt = md_opt_total(&inst, 14);

        println!("workload: {label}");
        println!(
            "  {} jobs, µ = {}, vol-vector = {}, span = {}",
            inst.len(),
            inst.mu().unwrap(),
            inst.vol_vector(),
            inst.span()
        );
        match opt.exact() {
            Some(v) => println!("  adversary OPT_total = {v} (exact)"),
            None => println!("  adversary OPT_total ∈ [{}, {}]", opt.lower, opt.upper),
        }
        let ff = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
        let bf = run_md_packing(&inst, &mut MdBestFitBySum::new()).unwrap();
        let nf = run_md_packing(&inst, &mut MdNextFit::new()).unwrap();
        for out in [&ff, &bf, &nf] {
            let ratio = (out.total_usage() / opt.lower).to_f64();
            println!(
                "  {:<16} servers={:<3} usage={:<8} ratio ≤ {:.3}",
                out.algorithm(),
                out.bins_opened(),
                out.total_usage().to_string(),
                ratio
            );
        }
        println!();
    }
    println!("note: with one resource dimension the vector engine is bit-for-bit");
    println!("identical to the scalar engine (enforced by the d1_equivalence tests).");
}
