//! Trace capture: attach observers to a packing run, watch the scan
//! behaviour live, and prove the recorded trace replays bit-for-bit.
//!
//! ```text
//! cargo run --release --example trace_capture
//! ```

use mindbp::core::algo::ArrivalView;
use mindbp::core::observe::FanOut;
use mindbp::core::{BinId, BinSnapshot, EngineObserver, FirstFit};
use mindbp::numeric::{rat, Rational};
use mindbp::obs::{verify, StepSeries, TraceRecorder};
use mindbp::prelude::*;

/// A custom observer: prints each placement decision as it happens.
/// Implement only the callbacks you care about — the rest default to
/// no-ops.
#[derive(Default)]
struct PlacementNarrator {
    scans: usize,
}

impl EngineObserver for PlacementNarrator {
    fn on_placement(
        &mut self,
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
    ) {
        self.scans += bins.len().min(chosen.0 as usize + 1);
        let verdict = if opened_new { "opens" } else { "reuses" };
        println!(
            "  t={:<4} {} (size {}) {verdict} {} ({} bins open)",
            arrival.time.to_string(),
            arrival.item,
            arrival.size,
            chosen,
            bins.len(),
        );
    }

    fn on_bin_closed(&mut self, record: &mindbp::core::BinRecord) {
        println!(
            "  t={:<4} {} closes after {} (mean level {})",
            record.usage.hi().to_string(),
            record.id,
            record.usage.len(),
            record.mean_level().unwrap_or(Rational::ZERO),
        );
    }
}

fn main() {
    let jobs = Instance::builder()
        .item(rat(1, 2), rat(0, 1), rat(3, 1))
        .item(rat(3, 4), rat(0, 1), rat(2, 1))
        .item(rat(1, 4), rat(1, 1), rat(4, 1))
        .item(rat(1, 2), rat(2, 1), rat(5, 1))
        .item(rat(2, 3), rat(3, 1), rat(6, 1))
        .build()
        .expect("valid instance");

    // Fan one run out to two observers: the narrator prints live, the
    // recorder keeps the full event log.
    println!("packing {} jobs under First Fit:", jobs.len());
    let mut narrator = PlacementNarrator::default();
    let mut recorder = TraceRecorder::new();
    let outcome = {
        let mut fan = FanOut::new(vec![&mut narrator, &mut recorder]);
        Runner::new(&jobs)
            .observer(&mut fan)
            .run(&mut FirstFit::new())
            .expect("packing succeeds")
    };

    // The trace is a complete, exact record of the run: the replay
    // verifier re-derives the outcome's totals from raw events and
    // compares them bit-for-bit.
    let summary = verify(recorder.events(), &outcome).expect("trace replays exactly");
    println!(
        "\nreplay: {} events → usage {} (peak {} servers), matches the engine exactly",
        recorder.events().len(),
        summary.total_usage,
        summary.max_open_bins,
    );

    // And it carries the whole time dimension, not just the totals.
    let series = StepSeries::from_events(recorder.events());
    let s = series.summary().expect("non-empty trace");
    println!(
        "series: span {}, avg open {:.2}, utilization {:.3}",
        s.span,
        s.avg_open_bins.map(|a| a.to_f64()).unwrap_or(0.0),
        s.utilization.map(|u| u.to_f64()).unwrap_or(0.0),
    );
    println!("\nJSONL trace:\n{}", recorder.to_jsonl());
}
