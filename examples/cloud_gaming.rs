//! Cloud gaming (the paper's §I motivation): dispatch a synthetic
//! day of game sessions to GPU servers rented by the hour, and
//! compare dispatch algorithms by the provider's bill.
//!
//! ```text
//! cargo run --release --example cloud_gaming
//! ```

use mindbp::cloudsim::{simulate, BillingModel};
use mindbp::numeric::{rat, Rational};
use mindbp::prelude::*;

fn main() {
    let cfg = GamingConfig {
        peak_sessions_per_hour: 80,
        ..Default::default()
    };
    let trace = cfg.generate();
    let inst = &trace.instance;
    println!(
        "generated {} sessions over {} hours (µ = {})",
        inst.len(),
        cfg.horizon_hours,
        inst.mu().unwrap()
    );

    // Per-title demand summary.
    for (i, title) in cfg.titles.iter().enumerate() {
        let count = trace.titles.iter().filter(|&&t| t == i).count();
        println!(
            "  {:>14}: {:>4} sessions × {} GPU",
            title.name, count, title.gpu_share
        );
    }
    println!();

    let mut results: Vec<(String, Rational, Rational, usize)> = Vec::new();
    for mut algo in [
        Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
        Box::new(BestFit::new()),
        Box::new(NextFit::new()),
        Box::new(HybridFirstFit::classic()),
    ] {
        let rep = simulate(inst)
            .billing(BillingModel::hourly())
            .run(algo.as_mut())
            .expect("dispatch");
        println!(
            "{:<20} servers={:<4} peak={:<3} usage={:>8.1}h billed={:>7.1}h util={:.2}",
            rep.algorithm,
            rep.servers_used,
            rep.peak_servers,
            (rep.usage_time / rat(60, 1)).to_f64(),
            (rep.billed_time / rat(60, 1)).to_f64(),
            rep.utilization.map(|u| u.to_f64()).unwrap_or(0.0),
        );
        results.push((
            rep.algorithm.clone(),
            rep.billed_time,
            rep.usage_time,
            rep.peak_servers,
        ));
    }

    // Fleet size over the day for First Fit, hour by hour.
    let rep = simulate(inst)
        .billing(BillingModel::hourly())
        .run(&mut FirstFit::new())
        .unwrap();
    println!("\nFirst Fit fleet size by hour:");
    for hour in 0..cfg.horizon_hours {
        let open = rep.open_at(rat((hour * 60 + 30) as i128, 1));
        println!("  {hour:>2}:30  {}", "#".repeat(open));
    }

    let best = results
        .iter()
        .min_by_key(|(_, billed, _, _)| *billed)
        .unwrap();
    let worst = results
        .iter()
        .max_by_key(|(_, billed, _, _)| *billed)
        .unwrap();
    println!(
        "\ncheapest: {} ({:.1} server-hours); priciest: {} ({:.1}) — {:.1}% saved by dispatch policy",
        best.0,
        (best.1 / rat(60, 1)).to_f64(),
        worst.0,
        (worst.1 / rat(60, 1)).to_f64(),
        100.0 * (1.0 - (best.1 / worst.1).to_f64()),
    );
}
