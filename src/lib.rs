#![warn(missing_docs)]

//! # `mindbp` — MinUsageTime Dynamic Bin Packing
//!
//! A complete implementation and experimental reproduction of
//! *"On First Fit Bin Packing for Online Cloud Server Allocation"*
//! (Tang, Li, Ren, Cai — IEEE IPDPS 2016): online job dispatching to
//! pay-as-you-go cloud servers, modeled as dynamic bin packing that
//! minimizes **total bin usage time**, with First Fit's `(µ+4)`
//! competitive-ratio machinery made executable and certifiable.
//!
//! This crate is the umbrella: it re-exports the workspace members
//! and hosts the runnable examples and cross-crate integration tests.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`numeric`] | `dbp-numeric` | exact rationals, half-open intervals, interval sets |
//! | [`simcore`] | `dbp-simcore` | event queue, time-weighted statistics |
//! | [`core`] | `dbp-core` | items/instances, packing engine, algorithm zoo |
//! | [`analysis`] | `dbp-analysis` | exact adversary, bounds, §IV–§VII decomposition, certification |
//! | [`workloads`] | `dbp-workloads` | adversarial gadgets, random & gaming workloads, traces |
//! | [`cloudsim`] | `dbp-cloudsim` | dispatcher, billing models, cost reports |
//! | [`par`] | `dbp-par` | deterministic parallel sweeps |
//! | [`obs`] | `dbp-obs` | engine tracing, metrics registry, replay verification |
//! | [`viz`] | `dbp-viz` | ASCII timeline renderings (the paper's figures) |
//! | [`multidim`] | `dbp-multidim` | multi-resource extension (§IX future work) |
//!
//! ## Quickstart
//!
//! ```
//! use mindbp::prelude::*;
//! use mindbp::numeric::rat;
//!
//! // Three jobs; sizes are fractions of one server, times are hours.
//! let jobs = Instance::builder()
//!     .item(rat(1, 2), rat(0, 1), rat(2, 1))
//!     .item(rat(1, 4), rat(1, 1), rat(3, 1))
//!     .item(rat(3, 4), rat(1, 1), rat(2, 1))
//!     .build()
//!     .unwrap();
//!
//! let outcome = run_packing(&jobs, &mut FirstFit::new()).unwrap();
//! let report = mindbp::analysis::measure_ratio(&jobs, &outcome);
//!
//! assert!(report.exact_ratio().unwrap() <= report.theorem1_bound().unwrap());
//! ```

pub use dbp_analysis as analysis;
pub use dbp_cloudsim as cloudsim;
pub use dbp_core as core;
pub use dbp_multidim as multidim;
pub use dbp_numeric as numeric;
pub use dbp_obs as obs;
pub use dbp_par as par;
pub use dbp_simcore as simcore;
pub use dbp_viz as viz;
pub use dbp_workloads as workloads;

/// The guided tour (docs/TUTORIAL.md), included here so its code
/// blocks compile and run as doctests.
#[doc = include_str!("../docs/TUTORIAL.md")]
pub mod tutorial {}

/// The most common imports across the workspace.
pub mod prelude {
    pub use dbp_analysis::{certify_first_fit, measure_ratio, opt_lower_bound};
    pub use dbp_cloudsim::prelude::*;
    pub use dbp_core::prelude::*;
    pub use dbp_numeric::{rat, Interval, IntervalSet, Rational};
    pub use dbp_workloads::{GamingConfig, RandomWorkload};
}
