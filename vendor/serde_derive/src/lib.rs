//! Offline stand-in for `serde_derive`.
//!
//! Emits implementations of the vendor `serde` crate's value-model
//! `Serialize`/`Deserialize` traits. Because crates.io is
//! unreachable in this build environment there is no `syn`/`quote`;
//! the item definition is parsed directly from the proc-macro token
//! stream. Supported shapes (everything the workspace derives):
//!
//! * named-field structs (with the `#[serde(default)]` field attr),
//! * tuple structs (newtypes serialize transparently, wider tuples
//!   as arrays),
//! * enums with unit / tuple / struct variants, externally tagged
//!   exactly like serde (`"Variant"` or `{"Variant": payload}`).
//!
//! Generic type parameters and container-level `#[serde(...)]`
//! attributes are rejected with a compile error; hand-write those
//! impls instead (see `dbp_numeric::Rational`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

/// A named field: identifier plus whether `#[serde(default)]` is set.
struct Field {
    name: String,
    default: bool,
}

/// One enum variant.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

/// Parsed derive input.
enum Item {
    Struct(String, Vec<Field>),
    TupleStruct(String, usize),
    Enum(String, Vec<Variant>),
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::Struct(n, _) | Item::TupleStruct(n, _) | Item::Enum(n, _) => n,
        }
    }
}

/// Skips attributes at `i`, returning whether any `#[serde(...)]`
/// among them contains the bare ident `default`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(a) = t {
                            match a.to_string().as_str() {
                                "default" => has_default = true,
                                other => panic!(
                                    "vendor serde_derive: unsupported serde attribute `{other}`"
                                ),
                            }
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    has_default
}

/// Skips `pub` / `pub(...)` at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skips a type at `i`: consumes tokens until a `,` at angle depth 0.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parses the fields of a named-field body `{ ... }`.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1; // name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        i += 1; // ','
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple body `( ... )`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1; // ','
        n += 1;
    }
    n
}

/// Parses the variants of an enum body `{ ... }`.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_tuple_fields(g.stream())));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Container attributes: any `#[serde(...)]` here would change the
    // wire format in ways this stub does not implement.
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            let mut it = g.stream().into_iter();
            if let Some(TokenTree::Ident(id)) = it.next() {
                assert!(
                    id.to_string() != "serde",
                    "vendor serde_derive: container-level #[serde(...)] is not supported; \
                     hand-write the impl instead"
                );
            }
        }
        i += 2;
    }
    skip_vis(&tokens, &mut i);
    let Some(TokenTree::Ident(kw)) = tokens.get(i) else {
        panic!("vendor serde_derive: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        panic!("vendor serde_derive: expected a type name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "vendor serde_derive: generic types are not supported; hand-write the impl"
        );
    }
    match (kw.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct(name, parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct(name, count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Enum(name, parse_variants(g.stream()))
        }
        _ => panic!("vendor serde_derive: unsupported item shape for `{name}`"),
    }
}

// ---------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed).
// ---------------------------------------------------------------

fn named_to_obj(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut s = String::from(
        "{ let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        s.push_str(&format!(
            "obj.push((\"{n}\".to_string(), ::serde::Serialize::to_value({a})));\n",
            n = f.name,
            a = access(&f.name),
        ));
    }
    s.push_str("::serde::Value::Object(obj) }");
    s
}

fn named_from_obj(ty: &str, fields: &[Field], src: &str) -> String {
    // Field initializers `name: ...,` reading from the object `src`.
    let mut s = String::new();
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::missing_field(\"{n}\", \
                 \"{ty}\"))",
                n = f.name,
            )
        };
        s.push_str(&format!(
            "{n}: match {src}.get(\"{n}\") {{ \
               ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
               ::std::option::Option::None => {missing}, \
             }},\n",
            n = f.name,
        ));
    }
    s
}

fn gen_serialize(item: &Item) -> String {
    let name = item.name();
    let body = match item {
        Item::Struct(_, fields) => named_to_obj(fields, |f| format!("&self.{f}")),
        Item::TupleStruct(_, 1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::TupleStruct(_, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Item::Enum(_, variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![(\
                             \"{vn}\".to_string(), {payload})]),\n",
                            binds = binds.join(", "),
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let payload = named_to_obj(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             \"{vn}\".to_string(), {payload})]),\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = item.name();
    let body = match item {
        Item::Struct(_, fields) => format!(
            "if v.as_object().is_none() {{ \
               return ::std::result::Result::Err(::serde::Error::expected(\"object\", v)); \
             }}\n\
             ::std::result::Result::Ok({name} {{\n{inits}}})",
            inits = named_from_obj(name, fields, "v"),
        ),
        Item::TupleStruct(_, 1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Item::TupleStruct(_, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", v))?;\n\
                 if a.len() != {n} {{ \
                   return ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"expected array of {n} for {name}, got {{}}\", a.len()))); \
                 }}\n\
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", "),
            )
        }
        Item::Enum(_, variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let ctor = if *n == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(payload)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                                .collect();
                            format!(
                                "{{ let a = payload.as_array().ok_or_else(|| \
                                 ::serde::Error::expected(\"array\", payload))?; \
                                 if a.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong tuple variant arity\".to_string())); }} \
                                 {name}::{vn}({elems}) }}",
                                elems = elems.join(", "),
                            )
                        };
                        payload_arms
                            .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({ctor}),\n"));
                    }
                    Variant::Struct(vn, fields) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               if payload.as_object().is_none() {{ \
                                 return ::std::result::Result::Err(\
                                   ::serde::Error::expected(\"object\", payload)); \
                               }} \
                               ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}) }}\n",
                            inits = named_from_obj(name, fields, "payload"),
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                   match s {{\n{unit_arms}\
                     other => return ::std::result::Result::Err(::serde::Error::custom(\
                       format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                   }}\n\
                 }}\n\
                 let obj = v.as_object().ok_or_else(|| \
                   ::serde::Error::expected(\"string or object\", v))?;\n\
                 if obj.len() != 1 {{ \
                   return ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected single-key variant object\".to_string())); \
                 }}\n\
                 let (tag, payload) = &obj[0];\n\
                 match tag.as_str() {{\n{payload_arms}\
                   other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
           {{\n{body}\n}}\n\
         }}\n"
    )
}
