//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of `rand` 0.8 the workspace actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, and [`Rng::gen`] for `f64`/`bool`, backed by the
//! xoshiro256** generator (Blackman & Vigna) seeded via SplitMix64.
//!
//! Determinism is the only contract the workspace relies on: every
//! generator is seeded explicitly and produces the same stream on
//! every platform. Statistical quality is that of xoshiro256**,
//! which is far beyond what seeded test workloads need. There is no
//! `thread_rng`/`from_entropy` — all seeds are explicit by design.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64, like
    /// upstream `rand`'s `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256** — the default engine behind both [`rngs::StdRng`] and
/// [`rngs::SmallRng`] in this stand-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_u64(seed: u64) -> Xoshiro256 {
        // SplitMix64 expansion of the seed into the full state; a
        // zero state is impossible because SplitMix64 is a bijection
        // away from the all-zero fixed point.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Xoshiro256 {
        Xoshiro256::from_seed_u64(seed)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The "standard" generator (xoshiro256** here).
    pub type StdRng = super::Xoshiro256;
    /// The "small" generator (same engine in this stand-in).
    pub type SmallRng = super::Xoshiro256;
}

/// A type that [`Rng::gen`] can produce from a word stream.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, width)` as `u128` (two words when needed).
fn draw_u128<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    debug_assert!(width > 0);
    if width <= u64::MAX as u128 {
        // Modulo draw: bias is < 2⁻⁶⁴·width, irrelevant for seeded
        // test workloads.
        (rng.next_u64() as u128) % width
    } else {
        let hi = (rng.next_u64() as u128) << 64;
        (hi | rng.next_u64() as u128) % width
    }
}

/// An element type [`Rng::gen_range`] can sample uniformly.
///
/// The blanket `SampleRange` impls below are generic over this trait
/// (mirroring upstream `rand`), which is what lets type inference
/// unify an integer literal in the range with the surrounding
/// expression, e.g. `rng.gen_range(0..100) < some_u32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let width = (hi as i128).wrapping_sub(lo as i128) as u128;
                let off = draw_u128(rng, width);
                ((lo as i128).wrapping_add(off as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                // Full-width inclusive ranges never occur in the
                // workspace; width fits u128 for every used type.
                let width = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = draw_u128(rng, width);
                ((lo as i128).wrapping_add(off as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        // For floats the inclusive upper bound is a measure-zero
        // distinction; treat it like the half-open case.
        assert!(lo <= hi, "cannot sample empty range");
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing sampling surface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of type `T` (only `f64`, `bool` and `u64` are
    /// wired up — the shapes the workspace uses).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i128..=17);
            assert!((-5..=17).contains(&x));
            let y = rng.gen_range(0u32..60);
            assert!(y < 60);
            let z = rng.gen_range(3usize..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            acc += f;
        }
        // Mean of 1000 uniform draws is close to 1/2.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
