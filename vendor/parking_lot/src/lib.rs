//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (the workspace uses `Mutex` for the exact-solver memo table and
//! nothing else). A poisoned std lock is recovered rather than
//! propagated: the guarded data here is a memo cache whose entries
//! are only ever inserted whole, so recovery is safe.

use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (no poison `Result`), like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
