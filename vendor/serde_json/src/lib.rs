//! Offline stand-in for `serde_json`: JSON text ↔ the vendor
//! `serde` crate's [`Value`] data model.
//!
//! Integers are parsed and printed through `i128`, so the workspace's
//! exact `Rational { num, den }` encoding survives a round trip
//! bit-for-bit — floats are only ever produced by reporting paths.
//! Output is deterministic: object key order is preserved from
//! serialization, pretty printing uses two-space indents.

use serde::{Deserialize, Serialize};

pub use serde::Value;

use std::fmt;

/// JSON serialization/parse failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    from_value(&value)
}

// ---------------------------------------------------------------
// Writer
// ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, and always includes a decimal point.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x \"quoted\"\n".into())),
            (
                "nums".into(),
                Value::Array(vec![
                    Value::Int(i128::MAX),
                    Value::Int(-3),
                    Value::Float(0.25),
                ]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"name\""));
    }

    #[test]
    fn i128_integers_are_exact() {
        let text = format!("[{}, {}]", i128::MAX, i128::MIN + 1);
        let v = parse(&text).unwrap();
        assert_eq!(
            v,
            Value::Array(vec![Value::Int(i128::MAX), Value::Int(i128::MIN + 1)])
        );
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("{ not json").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[] trailing").is_err());
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
