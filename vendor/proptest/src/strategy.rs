//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; rejected draws are
    /// retried (bounded), unlike upstream's whole-case rejection.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy for heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// A shared reference to a strategy is itself a strategy (lets the
// proptest! macro evaluate `&strat` bindings naturally).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}`: predicate rejected 10000 draws",
            self.whence
        );
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform union of strategies (built by [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len() - 1);
        self.options[i].generate(rng)
    }
}

// Every integer type the workspace samples fits in i128, so one
// exact draw routine serves all of them.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i128_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.i128_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);
