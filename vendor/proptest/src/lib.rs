//! Offline stand-in for the `proptest` crate.
//!
//! Reimplements the slice of proptest's surface this workspace's
//! property tests use — the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, [`Just`], [`prop_oneof!`], the
//! `prop_assert*`/`prop_assume!` macros and
//! [`ProptestConfig::with_cases`] — on top of a deterministic seeded
//! generator, with two deliberate simplifications:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   via the assertion message; cases are deterministic per test
//!   name, so failures reproduce exactly on re-run.
//! * **No persistence files.** Regressions are re-derived from the
//!   deterministic seed instead of `proptest-regressions/`.
//!
//! `PROPTEST_CASES` is honored as an override of the per-test case
//! count, matching how CI invokes the extended suites.

pub mod strategy;
pub mod test_runner;

/// `prop::…` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case with a formatted message unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Discards the current case (not counted as a failure) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                ::std::module_path!(), "::", stringify!($name)
            ));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < cases {
                attempts += 1;
                if attempts > cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} accepted of {} attempts)",
                        stringify!($name), ran, attempts
                    );
                }
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name), ran, msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn square_strategy() -> impl Strategy<Value = i64> {
        (0i64..100).prop_map(|x| x * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn squares_are_nonnegative(x in square_strategy()) {
            prop_assert!(x >= 0, "negative square {}", x);
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec((0i128..10, 0i128..10), 0..8)) {
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn oneof_unions(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u32..4) {
                prop_assert!(x < 3, "x = {}", x);
            }
        }
        inner();
    }
}
