//! Test configuration, case outcomes, and the deterministic RNG.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not
    /// implemented in this stand-in.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// The case count after applying the `PROPTEST_CASES` env
    /// override (upstream honors it the same way).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            // Upstream defaults to 256; this stand-in trims the
            // default (explicit `with_cases` and `PROPTEST_CASES`
            // both override it) to keep `cargo test` quick.
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — not a failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure outcome.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A discard outcome.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// The deterministic generator handed to strategies.
///
/// Seeded from the fully-qualified test name via FNV-1a, so each test
/// gets an independent, reproducible stream — re-running a failed
/// test replays the identical cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Generator for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Uniform draw from `[lo, hi]` (inclusive, exact).
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform `usize` draw from `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.i128_in(lo as i128, hi as i128) as usize
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
