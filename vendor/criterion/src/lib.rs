//! Offline stand-in for the `criterion` crate.
//!
//! Implements the call surface the workspace's `benches/` use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery:
//!
//! * warm up briefly, then calibrate an iteration count targeting
//!   ~`measurement_ms` of run time;
//! * take several samples and report median / min / max per
//!   iteration, plus derived throughput when declared;
//! * `--test` (what `cargo test` passes to bench targets) runs each
//!   benchmark exactly once, for a fast smoke check.
//!
//! Numbers from this harness are honest wall-clock medians and are
//! good for regression *tracking*; they make no outlier/variance
//! claims the way real criterion does.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id (used inside groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Filled in by [`Bencher::iter`]: per-iteration nanoseconds.
    samples: Vec<f64>,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Calibrated multi-sample measurement.
    Measure { measurement_ms: u64 },
    /// One iteration only (`--test`).
    Smoke,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
                self.samples.push(0.0);
            }
            Mode::Measure { measurement_ms } => {
                // Warm-up + calibration: time single iterations until
                // 5ms or 5 iters, whichever first.
                let warm_start = Instant::now();
                let mut one_iter_ns = f64::MAX;
                let mut warm_iters = 0u64;
                while warm_iters < 5 && warm_start.elapsed() < Duration::from_millis(5) {
                    let t = Instant::now();
                    black_box(f());
                    one_iter_ns = one_iter_ns.min(t.elapsed().as_nanos() as f64);
                    warm_iters += 1;
                }
                let one_iter_ns = one_iter_ns.max(1.0);
                let budget_ns = (measurement_ms as f64) * 1e6;
                const SAMPLES: usize = 10;
                let iters_per_sample =
                    ((budget_ns / SAMPLES as f64 / one_iter_ns).round() as u64).clamp(1, 1 << 20);
                for _ in 0..SAMPLES {
                    let t = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(f());
                    }
                    self.samples
                        .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
                }
            }
        }
    }
}

/// One finished benchmark's summary statistics.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark id (`group/name/param`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl Summary {
    fn from_samples(id: String, mut samples: Vec<f64>, throughput: Option<Throughput>) -> Summary {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median_ns = samples[samples.len() / 2];
        Summary {
            id,
            median_ns,
            min_ns: samples[0],
            max_ns: *samples.last().expect("non-empty samples"),
            throughput,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn time(ns: f64) -> String {
            if ns < 1e3 {
                format!("{ns:.1} ns")
            } else if ns < 1e6 {
                format!("{:.2} µs", ns / 1e3)
            } else if ns < 1e9 {
                format!("{:.2} ms", ns / 1e6)
            } else {
                format!("{:.2} s", ns / 1e9)
            }
        }
        write!(
            f,
            "{:<44} time: [{} {} {}]",
            self.id,
            time(self.min_ns),
            time(self.median_ns),
            time(self.max_ns)
        )?;
        if let Some(tp) = self.throughput {
            let (n, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if self.median_ns > 0.0 {
                let per_sec = n as f64 / (self.median_ns / 1e9);
                write!(f, "  thrpt: {per_sec:.0} {unit}/s")?;
            }
        }
        Ok(())
    }
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    mode: Mode,
    /// All summaries recorded this run, in execution order.
    pub summaries: Vec<Summary>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke {
                Mode::Smoke
            } else {
                Mode::Measure {
                    measurement_ms: 300,
                }
            },
            summaries: Vec::new(),
        }
    }
}

impl Criterion {
    /// Shrinks/extends the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        if let Mode::Measure { .. } = self.mode {
            self.mode = Mode::Measure {
                measurement_ms: d.as_millis().max(10) as u64,
            };
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run_one(id, None, |b| f(b));
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        f: F,
    ) {
        let mut bencher = Bencher {
            mode: self.mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            return; // closure never called iter()
        }
        let summary = Summary::from_samples(id, bencher.samples, throughput);
        println!("{summary}");
        self.summaries.push(summary);
    }

    /// Criterion calls this at the end of `main`; a no-op here.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let tp = self.throughput;
        self.parent.run_one(full, tp, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let tp = self.throughput;
        self.parent.run_one(full, tp, |b| f(b));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group-runner function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(2 + 2)));
        assert_eq!(c.summaries.len(), 2);
        assert_eq!(c.summaries[0].id, "g/sum/4");
        assert!(c.summaries[0].median_ns >= c.summaries[0].min_ns);
        let line = c.summaries[0].to_string();
        assert!(line.contains("time:"), "{line}");
    }
}
