//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to
//! crates.io, so this crate (plus the sibling `serde_derive` and
//! `serde_json` stubs under `vendor/`) reimplements the small slice
//! of serde's surface the workspace actually uses: derived
//! `Serialize`/`Deserialize` for plain structs and enums, routed
//! through a concrete JSON-like [`Value`] data model instead of
//! serde's visitor machinery.
//!
//! Design notes:
//!
//! * Integers are carried as `i128` end to end, so `dbp-numeric`'s
//!   `Rational { num, den }` round-trips **bit-exactly** through JSON
//!   (an explicit requirement of the trace/replay layer).
//! * Objects preserve insertion order (a `Vec` of pairs), so emitted
//!   JSON is stable across runs and diffs cleanly.
//! * Supported derive shapes: named-field structs, tuple structs,
//!   enums with unit/tuple/struct variants (externally tagged, like
//!   serde), and the `#[serde(default)]` field attribute.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing data model every serializable type maps into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Exact integer (covers every integer type in the workspace).
    Int(i128),
    /// Floating-point number (reporting only, never correctness).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integers widen lossily).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }

    /// A missing-field error.
    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error(format!("missing field `{field}` for {ty}"))
    }

    /// Free-form error.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can map itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------
// Serialize impls for std types (the surface the workspace uses).
// ---------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_int().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+ ; $n:expr)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if a.len() != $n {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got array of {}", $n, a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(42u32.to_value(), Value::Int(42));
        assert_eq!(u32::from_value(&Value::Int(42)), Ok(42));
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(
            <(u32, String)>::from_value(&Value::Array(vec![Value::Int(1), Value::Str("x".into())])),
            Ok((1, "x".to_string()))
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn errors_describe_kinds() {
        let e = u32::from_value(&Value::Str("no".into())).unwrap_err();
        assert!(e.to_string().contains("expected integer, got string"));
    }
}
