//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace (the
//! `dbp-par` work queue); since Rust 1.63 the standard library's
//! `std::thread::scope` provides the same structured-concurrency
//! guarantee, so this stand-in is a thin adapter that preserves the
//! crossbeam call shape: the scope closure and each spawned closure
//! receive a [`thread::Scope`] handle, `join` returns `Err` on worker
//! panic, and `scope` itself returns a `Result`.

pub mod thread {
    use std::marker::PhantomData;

    /// A handle for spawning scoped threads (wraps
    /// [`std::thread::Scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: the wrapper is a shared reference either way.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Owned permission to join one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread; `Err` carries the worker's panic
        /// payload, exactly like crossbeam.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope
        /// again (crossbeam's signature), so workers can spawn
        /// siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
                _marker: PhantomData,
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// A panic in `f` itself propagates (as in crossbeam). The `Ok`
    /// wrapper keeps call sites (`.expect("scope panicked")`)
    /// source-compatible with crossbeam's richer error reporting.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|_| data.len());
            h1.join().unwrap() + h2.join().unwrap() as i32
        })
        .unwrap();
        assert_eq!(sum, 9);
    }

    #[test]
    fn worker_panic_surfaces_in_join() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("boom") });
            h.join().is_err()
        })
        .unwrap();
        assert!(r);
    }
}
